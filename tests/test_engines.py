"""Differential tests: the levelized fast-path engine, the batched
bit-parallel engine and the exec-compiled codegen engine against the
dataflow firing engine (the semantics oracle), plus the ``engine=``
knob through :class:`Simulator`, :class:`Testbench` and the CLI.

The batched checks are *metamorphic*: lane ``k`` of one batched run
must equal an independent scalar run driven with stimulus ``k`` --
peeks, register state, per-lane violations, and RANDOM-gate streams
(the per-lane rng contract: lane ``k`` of a batched simulator seeded
``s`` draws from ``random.Random(s + k)``, in gate order, exactly like
a scalar simulator seeded ``s + k``).

Equivalence is checked cycle-by-cycle on peeks of every named signal,
the register state, and the violation log (compared as sorted
``(cycle, net)`` pairs -- the *values* attached to a violation depend
on driver arrival order, which the two engines legitimately disagree
on).  In strict mode a raised :class:`SimulationError` is part of the
observable behaviour and must match too.
"""

import json
import random

import pytest

import repro
from repro.cli import main
from repro.core.schedule import ScheduleError, build_schedule
from repro.core.simulator import ENGINES
from repro.lang import SimulationError
from repro.stdlib import programs
from repro.testbench import Testbench

from test_fuzz import build_dag, render_zeus
from zeus_test_utils import compile_ok

SIMPLE = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL r: REG;
BEGIN
    IF RSET THEN r.in := 0 ELSE r.in := NOT r.out END;
    y := AND(a, r.out)
END;
SIGNAL u: t;
"""

CYCLIC = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p, q: boolean;
BEGIN
    p := AND(a, q);
    q := OR(a, p);
    y := q
END;
SIGNAL u: t;
"""

CONFLICT = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN
    IF a THEN p := 1 END;
    IF NOT a THEN p := 1 END;
    IF a THEN p := 0 END;
    y := p
END;
SIGNAL u: t;
"""


def scalar_paths(circuit):
    return [p for p in circuit.netlist.signals if not p.endswith("]")]


def port_stimulus(circuit):
    """A deterministic per-cycle drive pattern over every IN port:
    RSET for two cycles, then alternating bits staggered per port."""
    inputs = [p.name for p in circuit.netlist.ports if p.mode == "IN"]

    def stim(cycle):
        drives = []
        for k, name in enumerate(inputs):
            if name == "RSET":
                drives.append((name, 1 if cycle < 2 else 0))
            else:
                drives.append((name, (cycle + k) % 2))
        return drives

    return stim


def run_trace(circuit, engine, *, cycles=20, seed=3, strict=True,
              stimulus=None):
    """Capture (peeks, registers) per cycle, the violation log and any
    strict-mode SimulationError."""
    sim = circuit.simulator(seed=seed, strict=strict, engine=engine)
    paths = scalar_paths(circuit)
    rows = []
    error = None
    try:
        for cycle in range(cycles):
            if stimulus is not None:
                for sig, val in stimulus(cycle):
                    sim.poke(sig, val)
            sim.step()
            rows.append((
                tuple(str(v) for p in paths for v in sim.peek(p)),
                tuple(sorted(
                    (k, str(v)) for k, v in sim.registers().items()
                )),
            ))
    except SimulationError as exc:
        error = str(exc)
    violations = sorted((v.cycle, v.net) for v in sim.violations)
    return rows, violations, error


class TestStdlibEquivalence:
    @pytest.mark.parametrize("name", sorted(programs.ALL_PROGRAMS))
    def test_engines_agree(self, name):
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        stim = port_stimulus(circuit)
        lev = run_trace(circuit, "levelized", stimulus=stim)
        # Sanity: the fast path actually engaged.
        assert circuit.simulator(engine="levelized").engine == "levelized"
        df = run_trace(circuit, "dataflow", stimulus=stim)
        assert lev == df

    @pytest.mark.parametrize("name", ["blackjack", "memory"])
    def test_engines_agree_undriven(self, name):
        # No stimulus at all: UNDEF propagation must match as well.
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        assert run_trace(circuit, "levelized") == run_trace(
            circuit, "dataflow"
        )


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_dags_agree(self, seed):
        rng = random.Random(seed)
        n_inputs = rng.randint(2, 5)
        nodes = build_dag(rng, n_inputs, rng.randint(3, 12))
        circuit = repro.compile_text(
            render_zeus(n_inputs, nodes), strict=False
        )

        def stim(cycle):
            return [(f"i{k}", (seed + cycle + k) % 2)
                    for k in range(n_inputs)]

        for strict in (True, False):
            lev = run_trace(circuit, "levelized", cycles=6, seed=seed,
                            strict=strict, stimulus=stim)
            df = run_trace(circuit, "dataflow", cycles=6, seed=seed,
                           strict=strict, stimulus=stim)
            assert lev == df

    @pytest.mark.parametrize("seed", range(8))
    def test_random_register_pipelines_agree(self, seed):
        rng = random.Random(1000 + seed)
        depth = rng.randint(1, 4)
        regs = "; ".join(f"SIGNAL r{i}: REG" for i in range(depth))
        stages = "\n".join(
            f"    r{i}.in := NOT r{i - 1}.out;" for i in range(1, depth)
        )
        text = f"""
TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
{regs};
BEGIN
    r0.in := d;
{stages}
    q := r{depth - 1}.out
END;
SIGNAL u: t;
"""
        circuit = repro.compile_text(text)

        def stim(cycle):
            return [("d", (seed >> (cycle % 4)) & 1)]

        assert run_trace(circuit, "levelized", stimulus=stim) == run_trace(
            circuit, "dataflow", stimulus=stim
        )


class TestViolationEquivalence:
    def test_lenient_conflicts_agree(self):
        circuit = repro.compile_text(CONFLICT, strict=False)

        def stim(cycle):
            return [("a", cycle % 2)]

        lev = run_trace(circuit, "levelized", strict=False, stimulus=stim)
        df = run_trace(circuit, "dataflow", strict=False, stimulus=stim)
        assert lev == df
        assert lev[1]  # conflicts were actually exercised

    def test_strict_conflict_raises_same_error(self):
        circuit = repro.compile_text(CONFLICT, strict=False)

        def stim(cycle):
            return [("a", 1)]

        lev = run_trace(circuit, "levelized", strict=True, stimulus=stim)
        df = run_trace(circuit, "dataflow", strict=True, stimulus=stim)
        assert lev == df
        assert lev[2] is not None and "burn" in lev[2]


class TestMetricsEquivalence:
    def test_activity_counters_agree(self):
        circuit = repro.compile_text(programs.ALL_PROGRAMS["blackjack"])
        stats = {}
        for engine in ("levelized", "dataflow"):
            sim = circuit.simulator(metrics=True, engine=engine)
            sim.poke("RSET", 1); sim.step()
            sim.poke("RSET", 0); sim.step(15)
            m = sim.metrics
            stats[engine] = (
                m.cycles, m.firings, m.latches, m.violations,
                m.firings_per_cycle, m.net_fires, m.net_toggles,
            )
            assert m.engine == engine
        assert stats["levelized"] == stats["dataflow"]


class TestEngineKnob:
    def test_engine_values(self):
        circuit = compile_ok(SIMPLE)
        assert ENGINES == (
            "auto", "levelized", "dataflow", "batched", "codegen"
        )
        sim = circuit.simulator()
        assert sim.engine_requested == "auto"
        assert sim.engine == "levelized"
        assert circuit.simulator(engine="dataflow").engine == "dataflow"
        assert circuit.simulator(engine="levelized").engine == "levelized"
        batched = circuit.simulator(engine="batched", lanes=4)
        assert batched.engine == "batched"
        assert batched.lanes == 4
        assert sim.lanes is None
        cg = circuit.simulator(engine="codegen", lanes=4)
        assert cg.engine == "codegen"
        assert cg.lanes == 4
        assert cg._cg is not None, cg.engine_reason
        assert cg.codegen_backend in ("int", "numpy")
        assert batched.codegen_backend is None

    def test_codegen_cyclic_design_falls_back_per_lane(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(strict=False, engine="codegen", lanes=4)
        assert sim.engine == "codegen"
        assert not sim._batched_fast
        assert sim._cg is None
        assert "fallback" in sim.engine_reason
        sim.poke("a", 1)
        sim.step()
        assert [str(v[0]) for v in sim.peek_lanes("y")] == ["1"] * 4

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            compile_ok(SIMPLE).simulator(engine="warp")

    def test_record_firing_uses_dataflow_order(self):
        sim = compile_ok(SIMPLE).simulator(record_firing=True)
        assert sim.engine == "dataflow"
        assert sim.engine_reason

    def test_cyclic_design_falls_back(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(strict=False)
        assert sim.engine == "dataflow"
        assert "cycle" in sim.engine_reason

    def test_forcing_levelized_on_cyclic_design_raises(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        with pytest.raises(SimulationError, match="levelized schedule"):
            circuit.simulator(strict=False, engine="levelized")

    def test_build_schedule_rejects_cycles(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(strict=False)
        with pytest.raises(ScheduleError):
            build_schedule(sim)

    def test_schedule_describe(self):
        sim = compile_ok(SIMPLE).simulator()
        text = sim._schedule.describe()
        assert "ops" in text

    def test_testbench_engine_knob(self):
        circuit = compile_ok(SIMPLE)
        tb = Testbench(circuit, engine="dataflow")
        assert tb.sim.engine == "dataflow"
        assert Testbench(circuit).sim.engine == "levelized"
        # After reset r holds 0; a second enabled cycle brings r.out to
        # 1, so y = AND(a, r.out) reads 1.
        tb.reset().drive(a=1).clock(2)
        tb.expect(y=1)


class TestEngineCli:
    def run(self, argv, capsys):
        code = main(argv)
        out = capsys.readouterr()
        return code, out.out

    def test_sim_engine_flag_in_report(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        code, _ = self.run(
            ["sim", "--builtin", "blackjack", "--cycles", "4",
             "--engine", "dataflow", "--metrics", str(out_file)], capsys
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["sim"]["engine"] == "dataflow"

    def test_profile_reports_engine(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        code, out = self.run(
            ["profile", "--builtin", "adders", "--cycles", "4",
             "--metrics", str(out_file)], capsys
        )
        assert code == 0
        assert "simulation engine : levelized" in out
        report = json.loads(out_file.read_text())
        assert report["sim"]["engine"] == "levelized"

    def test_sim_engine_output_independent(self, capsys):
        outs = []
        for engine in ("levelized", "dataflow"):
            code, out = self.run(
                ["sim", "--builtin", "mux4", "--cycles", "6",
                 "--poke", "d=5", "--poke", "a=2", "--poke", "g=1",
                 "--engine", engine], capsys
            )
            assert code == 0
            outs.append(out)
        assert outs[0] == outs[1]

    def test_sim_engine_batched_dispatches(self, capsys):
        code, out = self.run(
            ["sim", "--builtin", "mux4", "--cycles", "2",
             "--poke", "d=5", "--poke", "a=2", "--poke", "g=1",
             "--engine", "batched"], capsys
        )
        assert code == 0
        assert "batched run: 64 lanes" in out

    def test_sim_engine_codegen_dispatches(self, capsys):
        outs = []
        for engine in ("batched", "codegen"):
            code, out = self.run(
                ["sim", "--builtin", "mux4", "--cycles", "2",
                 "--poke", "d=5", "--poke", "a=2", "--poke", "g=1",
                 "--engine", engine], capsys
            )
            assert code == 0
            outs.append(out)
        assert "codegen run: 64 lanes" in outs[1]
        # Identical observations below the engine banner line.
        assert outs[0].split("\n", 1)[1] == outs[1].split("\n", 1)[1]


# -- the batched engine, lane by lane -------------------------------------

LANES = 4
BATCH_SEED = 3


def lane_stimulus(circuit):
    """Per-lane variant of :func:`port_stimulus`: lane ``k`` staggers
    every non-RSET input by an extra ``k`` cycles."""
    inputs = [p.name for p in circuit.netlist.ports if p.mode == "IN"]

    def stim(cycle, lane):
        drives = []
        for j, name in enumerate(inputs):
            if name == "RSET":
                drives.append((name, 1 if cycle < 2 else 0))
            else:
                drives.append((name, (cycle + j + lane) % 2))
        return drives

    return stim


def run_batched_lanes(circuit, stim, *, cycles=10, seed=BATCH_SEED,
                      strict=True, lanes=LANES, engine="batched",
                      backend="auto"):
    """One batched-or-codegen run; returns per-lane (rows, violations,
    error) in the same shape :func:`run_trace` produces for a scalar
    run."""
    sim = circuit.simulator(
        seed=seed, strict=strict, engine=engine, lanes=lanes,
        backend=backend,
    )
    paths = scalar_paths(circuit)
    inputs = [p.name for p in circuit.netlist.ports if p.mode == "IN"]
    rows = [[] for _ in range(lanes)]
    error = None
    try:
        for cycle in range(cycles):
            if stim is not None:
                per_input = {name: [] for name in inputs}
                for k in range(lanes):
                    for name, value in stim(cycle, k):
                        per_input[name].append(value)
                for name, values in per_input.items():
                    if values:
                        sim.poke_lanes(name, values)
            sim.step()
            snap = {p: sim.peek_lanes(p) for p in paths}
            for k in range(lanes):
                rows[k].append((
                    tuple(str(v) for p in paths for v in snap[p][k]),
                    tuple(sorted(
                        (name, str(v))
                        for name, v in sim.registers(lane=k).items()
                    )),
                ))
    except SimulationError as exc:
        error = str(exc)
    return [
        (
            rows[k],
            sorted(
                (v.cycle, v.net)
                for v in sim.violations
                if v.lane == k
            ),
            error,
        )
        for k in range(lanes)
    ]


class TestBatchedMetamorphic:
    """Lane k of one batched run == an independent scalar run with
    stimulus k and seed ``BATCH_SEED + k``, for every stdlib program."""

    @pytest.mark.parametrize("engine", ["batched", "codegen"])
    @pytest.mark.parametrize("name", sorted(programs.ALL_PROGRAMS))
    def test_every_lane_matches_scalar_run(self, name, engine):
        # Lenient mode: some staggered-lane stimuli legitimately conflict
        # (htree's driver exclusivity depends on the input pattern), and
        # recorded violations must then match lane by lane.
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        stim = lane_stimulus(circuit)
        fast = circuit.simulator(engine=engine, lanes=LANES)
        assert fast._batched_fast, "stdlib must take the bit-parallel path"
        if engine == "codegen":
            assert fast._cg is not None, fast.engine_reason
        per_lane = run_batched_lanes(circuit, stim, cycles=10, strict=False,
                                     engine=engine)
        for k in range(LANES):
            scalar = run_trace(
                circuit, "dataflow", cycles=10, seed=BATCH_SEED + k,
                strict=False, stimulus=lambda cycle: stim(cycle, k),
            )
            assert per_lane[k][0] == scalar[0], f"{name}: lane {k} peeks"
            assert per_lane[k][1] == scalar[1], f"{name}: lane {k} violations"

    @pytest.mark.parametrize("name", ["blackjack", "memory"])
    def test_undriven_lanes_match(self, name):
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        per_lane = run_batched_lanes(circuit, None, cycles=8)
        for k in range(LANES):
            scalar = run_trace(
                circuit, "dataflow", cycles=8, seed=BATCH_SEED + k
            )
            assert per_lane[k][0] == scalar[0]

    @pytest.mark.parametrize("engine", ["batched", "codegen"])
    @pytest.mark.parametrize("seed", range(10))
    def test_random_dags_lane_by_lane(self, seed, engine):
        rng = random.Random(seed)
        n_inputs = rng.randint(2, 5)
        nodes = build_dag(rng, n_inputs, rng.randint(3, 12))
        circuit = repro.compile_text(
            render_zeus(n_inputs, nodes), strict=False
        )

        def stim(cycle, lane):
            return [(f"i{j}", (seed + cycle + j + lane) % 2)
                    for j in range(n_inputs)]

        per_lane = run_batched_lanes(circuit, stim, cycles=6, seed=seed,
                                     strict=False, engine=engine)
        for k in range(LANES):
            scalar = run_trace(
                circuit, "dataflow", cycles=6, seed=seed + k, strict=False,
                stimulus=lambda cycle: stim(cycle, k),
            )
            assert per_lane[k] == scalar


RANDOM_GATE = """
TYPE t = COMPONENT (IN a: boolean; OUT y, z: boolean) IS
BEGIN
    y := AND(a, RANDOM());
    z := XOR(RANDOM(), RANDOM())
END;
SIGNAL u: t;
"""


class TestBatchedRngContract:
    """The documented per-lane rng contract: lane k of a batched run
    seeded s consumes ``random.Random(s + k)`` in gate order, so it
    reproduces a scalar run seeded ``s + k`` bit for bit."""

    @pytest.mark.parametrize("engine", ["batched", "codegen"])
    def test_lane_streams_match_scalar_seeds(self, engine):
        circuit = compile_ok(RANDOM_GATE)
        lanes = 6
        sim = circuit.simulator(engine=engine, lanes=lanes, seed=11)
        sim.poke("a", 1)
        batched = [[] for _ in range(lanes)]
        for _ in range(16):
            sim.step()
            ys = sim.peek_lanes("y")
            zs = sim.peek_lanes("z")
            for k in range(lanes):
                batched[k].append((str(ys[k][0]), str(zs[k][0])))
        for k in range(lanes):
            ref = circuit.simulator(engine="dataflow", seed=11 + k)
            ref.poke("a", 1)
            expect = []
            for _ in range(16):
                ref.step()
                expect.append(
                    (str(ref.peek_bit("y")), str(ref.peek_bit("z")))
                )
            assert batched[k] == expect, f"lane {k} rng stream diverged"

    def test_lanes_are_decorrelated(self):
        circuit = compile_ok(RANDOM_GATE)
        sim = circuit.simulator(engine="batched", lanes=8, seed=0)
        sim.poke("a", 1)
        streams = [[] for _ in range(8)]
        for _ in range(32):
            sim.step()
            ys = sim.peek_lanes("y")
            for k in range(8):
                streams[k].append(str(ys[k][0]))
        assert len({tuple(s) for s in streams}) > 1


class TestBatchedKnobs:
    def test_testbench_lanes_knob(self):
        circuit = compile_ok(SIMPLE)
        tb = Testbench(circuit, lanes=4)
        assert tb.sim.engine == "batched"
        assert tb.sim.lanes == 4
        tb.drive_lanes("RSET", [1, 1, 1, 1])
        tb.clock()
        tb.drive_lanes("RSET", [0, 0, 0, 0])
        tb.drive_lanes("a", [0, 1, 0, 1])
        tb.clock(2)
        # after reset r.out toggles to 1, so y = a
        assert [str(v[0]) for v in tb.peek_lanes("y")] == ["0", "1", "0", "1"]

    def test_batched_requires_positive_lanes(self):
        with pytest.raises(ValueError, match="lanes"):
            compile_ok(SIMPLE).simulator(engine="batched", lanes=0)

    def test_equiv_batched_matches_scalar(self):
        a = repro.compile_text(programs.ripple_carry(4), top="adder")
        b = repro.compile_text(programs.ripple_carry(4), top="adder")
        from repro.analysis.equiv import exhaustive_equivalent

        batched = exhaustive_equivalent(a, b)
        scalar = exhaustive_equivalent(a, b, engine="dataflow")
        assert batched.equivalent and scalar.equivalent
        assert batched.vectors_checked == scalar.vectors_checked
        assert batched.engine == "batched"
        assert batched.lanes is not None
