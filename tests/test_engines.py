"""Differential tests: the levelized fast-path engine against the
dataflow firing engine (the semantics oracle), plus the ``engine=``
knob through :class:`Simulator`, :class:`Testbench` and the CLI.

Equivalence is checked cycle-by-cycle on peeks of every named signal,
the register state, and the violation log (compared as sorted
``(cycle, net)`` pairs -- the *values* attached to a violation depend
on driver arrival order, which the two engines legitimately disagree
on).  In strict mode a raised :class:`SimulationError` is part of the
observable behaviour and must match too.
"""

import json
import random

import pytest

import repro
from repro.cli import main
from repro.core.schedule import ScheduleError, build_schedule
from repro.core.simulator import ENGINES
from repro.lang import SimulationError
from repro.stdlib import programs
from repro.testbench import Testbench

from test_fuzz import build_dag, render_zeus
from zeus_test_utils import compile_ok

SIMPLE = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL r: REG;
BEGIN
    IF RSET THEN r.in := 0 ELSE r.in := NOT r.out END;
    y := AND(a, r.out)
END;
SIGNAL u: t;
"""

CYCLIC = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p, q: boolean;
BEGIN
    p := AND(a, q);
    q := OR(a, p);
    y := q
END;
SIGNAL u: t;
"""

CONFLICT = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN
    IF a THEN p := 1 END;
    IF NOT a THEN p := 1 END;
    IF a THEN p := 0 END;
    y := p
END;
SIGNAL u: t;
"""


def scalar_paths(circuit):
    return [p for p in circuit.netlist.signals if not p.endswith("]")]


def port_stimulus(circuit):
    """A deterministic per-cycle drive pattern over every IN port:
    RSET for two cycles, then alternating bits staggered per port."""
    inputs = [p.name for p in circuit.netlist.ports if p.mode == "IN"]

    def stim(cycle):
        drives = []
        for k, name in enumerate(inputs):
            if name == "RSET":
                drives.append((name, 1 if cycle < 2 else 0))
            else:
                drives.append((name, (cycle + k) % 2))
        return drives

    return stim


def run_trace(circuit, engine, *, cycles=20, seed=3, strict=True,
              stimulus=None):
    """Capture (peeks, registers) per cycle, the violation log and any
    strict-mode SimulationError."""
    sim = circuit.simulator(seed=seed, strict=strict, engine=engine)
    paths = scalar_paths(circuit)
    rows = []
    error = None
    try:
        for cycle in range(cycles):
            if stimulus is not None:
                for sig, val in stimulus(cycle):
                    sim.poke(sig, val)
            sim.step()
            rows.append((
                tuple(str(v) for p in paths for v in sim.peek(p)),
                tuple(sorted(
                    (k, str(v)) for k, v in sim.registers().items()
                )),
            ))
    except SimulationError as exc:
        error = str(exc)
    violations = sorted((v.cycle, v.net) for v in sim.violations)
    return rows, violations, error


class TestStdlibEquivalence:
    @pytest.mark.parametrize("name", sorted(programs.ALL_PROGRAMS))
    def test_engines_agree(self, name):
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        stim = port_stimulus(circuit)
        lev = run_trace(circuit, "levelized", stimulus=stim)
        # Sanity: the fast path actually engaged.
        assert circuit.simulator(engine="levelized").engine == "levelized"
        df = run_trace(circuit, "dataflow", stimulus=stim)
        assert lev == df

    @pytest.mark.parametrize("name", ["blackjack", "memory"])
    def test_engines_agree_undriven(self, name):
        # No stimulus at all: UNDEF propagation must match as well.
        circuit = repro.compile_text(programs.ALL_PROGRAMS[name], name=name)
        assert run_trace(circuit, "levelized") == run_trace(
            circuit, "dataflow"
        )


class TestFuzzEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_dags_agree(self, seed):
        rng = random.Random(seed)
        n_inputs = rng.randint(2, 5)
        nodes = build_dag(rng, n_inputs, rng.randint(3, 12))
        circuit = repro.compile_text(
            render_zeus(n_inputs, nodes), strict=False
        )

        def stim(cycle):
            return [(f"i{k}", (seed + cycle + k) % 2)
                    for k in range(n_inputs)]

        for strict in (True, False):
            lev = run_trace(circuit, "levelized", cycles=6, seed=seed,
                            strict=strict, stimulus=stim)
            df = run_trace(circuit, "dataflow", cycles=6, seed=seed,
                           strict=strict, stimulus=stim)
            assert lev == df

    @pytest.mark.parametrize("seed", range(8))
    def test_random_register_pipelines_agree(self, seed):
        rng = random.Random(1000 + seed)
        depth = rng.randint(1, 4)
        regs = "; ".join(f"SIGNAL r{i}: REG" for i in range(depth))
        stages = "\n".join(
            f"    r{i}.in := NOT r{i - 1}.out;" for i in range(1, depth)
        )
        text = f"""
TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
{regs};
BEGIN
    r0.in := d;
{stages}
    q := r{depth - 1}.out
END;
SIGNAL u: t;
"""
        circuit = repro.compile_text(text)

        def stim(cycle):
            return [("d", (seed >> (cycle % 4)) & 1)]

        assert run_trace(circuit, "levelized", stimulus=stim) == run_trace(
            circuit, "dataflow", stimulus=stim
        )


class TestViolationEquivalence:
    def test_lenient_conflicts_agree(self):
        circuit = repro.compile_text(CONFLICT, strict=False)

        def stim(cycle):
            return [("a", cycle % 2)]

        lev = run_trace(circuit, "levelized", strict=False, stimulus=stim)
        df = run_trace(circuit, "dataflow", strict=False, stimulus=stim)
        assert lev == df
        assert lev[1]  # conflicts were actually exercised

    def test_strict_conflict_raises_same_error(self):
        circuit = repro.compile_text(CONFLICT, strict=False)

        def stim(cycle):
            return [("a", 1)]

        lev = run_trace(circuit, "levelized", strict=True, stimulus=stim)
        df = run_trace(circuit, "dataflow", strict=True, stimulus=stim)
        assert lev == df
        assert lev[2] is not None and "burn" in lev[2]


class TestMetricsEquivalence:
    def test_activity_counters_agree(self):
        circuit = repro.compile_text(programs.ALL_PROGRAMS["blackjack"])
        stats = {}
        for engine in ("levelized", "dataflow"):
            sim = circuit.simulator(metrics=True, engine=engine)
            sim.poke("RSET", 1); sim.step()
            sim.poke("RSET", 0); sim.step(15)
            m = sim.metrics
            stats[engine] = (
                m.cycles, m.firings, m.latches, m.violations,
                m.firings_per_cycle, m.net_fires, m.net_toggles,
            )
            assert m.engine == engine
        assert stats["levelized"] == stats["dataflow"]


class TestEngineKnob:
    def test_engine_values(self):
        circuit = compile_ok(SIMPLE)
        assert ENGINES == ("auto", "levelized", "dataflow")
        sim = circuit.simulator()
        assert sim.engine_requested == "auto"
        assert sim.engine == "levelized"
        assert circuit.simulator(engine="dataflow").engine == "dataflow"
        assert circuit.simulator(engine="levelized").engine == "levelized"

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            compile_ok(SIMPLE).simulator(engine="warp")

    def test_record_firing_uses_dataflow_order(self):
        sim = compile_ok(SIMPLE).simulator(record_firing=True)
        assert sim.engine == "dataflow"
        assert sim.engine_reason

    def test_cyclic_design_falls_back(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(strict=False)
        assert sim.engine == "dataflow"
        assert "cycle" in sim.engine_reason

    def test_forcing_levelized_on_cyclic_design_raises(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        with pytest.raises(SimulationError, match="levelized schedule"):
            circuit.simulator(strict=False, engine="levelized")

    def test_build_schedule_rejects_cycles(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(strict=False)
        with pytest.raises(ScheduleError):
            build_schedule(sim)

    def test_schedule_describe(self):
        sim = compile_ok(SIMPLE).simulator()
        text = sim._schedule.describe()
        assert "ops" in text

    def test_testbench_engine_knob(self):
        circuit = compile_ok(SIMPLE)
        tb = Testbench(circuit, engine="dataflow")
        assert tb.sim.engine == "dataflow"
        assert Testbench(circuit).sim.engine == "levelized"
        # After reset r holds 0; a second enabled cycle brings r.out to
        # 1, so y = AND(a, r.out) reads 1.
        tb.reset().drive(a=1).clock(2)
        tb.expect(y=1)


class TestEngineCli:
    def run(self, argv, capsys):
        code = main(argv)
        out = capsys.readouterr()
        return code, out.out

    def test_sim_engine_flag_in_report(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        code, _ = self.run(
            ["sim", "--builtin", "blackjack", "--cycles", "4",
             "--engine", "dataflow", "--metrics", str(out_file)], capsys
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        assert report["sim"]["engine"] == "dataflow"

    def test_profile_reports_engine(self, tmp_path, capsys):
        out_file = tmp_path / "m.json"
        code, out = self.run(
            ["profile", "--builtin", "adders", "--cycles", "4",
             "--metrics", str(out_file)], capsys
        )
        assert code == 0
        assert "simulation engine : levelized" in out
        report = json.loads(out_file.read_text())
        assert report["sim"]["engine"] == "levelized"

    def test_sim_engine_output_independent(self, capsys):
        outs = []
        for engine in ("levelized", "dataflow"):
            code, out = self.run(
                ["sim", "--builtin", "mux4", "--cycles", "6",
                 "--poke", "d=5", "--poke", "a=2", "--poke", "g=1",
                 "--engine", engine], capsys
            )
            assert code == 0
            outs.append(out)
        assert outs[0] == outs[1]
