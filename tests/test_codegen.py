"""The exec-compiled codegen engine (:mod:`repro.core.codegen`).

Covers, for both plane backends (big-int and NumPy word arrays):

* opcode agreement with :data:`repro.core.values.GATE_FUNCTIONS` over
  every ``4^k`` operand combination (hypothesis drives random mixes);
* the lazy NOINFL amplification path (a guarded driver left off feeds
  NOINFL into a gate, which must read it as UNDEF);
* a generated-source golden file for one stdlib design (mux4) so
  unintended emission changes show up in review;
* the exotic-poke contract: the int backend falls back to the
  interpreter per pass, the numpy backend demotes permanently until
  ``reset_state``;
* the four-engine differential fuzz slice (dataflow oracle);
* graceful degradation when NumPy is absent;
* the flight-recorder ``reset``/rebind regressions (stale pre-reset
  snapshots must never leak into a later explain window).
"""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.fuzzgen import differential_check, generate_program
from repro.core import codegen
from repro.core.codegen import (
    CodegenError,
    CompiledStep,
    HAVE_NUMPY,
    NUMPY_LANE_THRESHOLD,
    choose_backend,
    compile_step,
    int_to_words,
    words_for,
    words_to_int,
)
from repro.core.values import GATE_FUNCTIONS, Logic
from repro.obs.flight import FlightRecorder
from repro.stdlib import programs
from zeus_test_utils import compile_ok

import itertools

ALL_LOGIC = [Logic.ZERO, Logic.ONE, Logic.UNDEF, Logic.NOINFL]

BACKENDS = ("int", "numpy") if HAVE_NUMPY else ("int",)

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not importable")

GOLDEN = pathlib.Path(__file__).parent / "golden" / "mux4_codegen_int.txt"


def _codegen_sim(circuit, lanes, backend="int", **kw):
    sim = circuit.simulator(engine="codegen", lanes=lanes, backend=backend, **kw)
    assert sim._cg is not None, sim.engine_reason
    assert sim.codegen_backend == backend
    return sim


# -- backend selection and word packing -----------------------------------


class TestHelpers:
    def test_choose_backend_threshold(self):
        assert choose_backend(1) == "int"
        assert choose_backend(NUMPY_LANE_THRESHOLD - 1) == "int"
        want = "numpy" if HAVE_NUMPY else "int"
        assert choose_backend(NUMPY_LANE_THRESHOLD) == want

    def test_words_for(self):
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2

    @needs_numpy
    @given(st.integers(min_value=0, max_value=(1 << 200) - 1))
    @settings(max_examples=60, deadline=None)
    def test_word_roundtrip(self, value):
        words = words_for(200)
        arr = int_to_words(value, words)
        assert len(arr) == words
        assert words_to_int(arr) == value

    @needs_numpy
    def test_words_to_int_passes_ints_through(self):
        assert words_to_int(41) == 41

    def test_unknown_backend_raises(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(engine="codegen", lanes=2, backend="cuda")
        assert sim._cg is None
        assert "fallback" in sim.engine_reason


# -- opcode agreement (mirrors tests/test_batched.py for codegen) ---------


_HALFADDER_CACHE = []


def _halfadder():
    if not _HALFADDER_CACHE:
        _HALFADDER_CACHE.append(compile_ok(
            """
            TYPE halfadder = COMPONENT (IN a,b: boolean;
                                        OUT cout,s: boolean) IS
            BEGIN
                s := XOR(a,b);
                cout := AND(a,b)
            END;
            SIGNAL h: halfadder;
            """
        ))
    return _HALFADDER_CACHE[0]


def _gate_circuit(op, arity):
    ins = ", ".join(f"i{k}" for k in range(arity))
    expr = "NOT i0" if op == "NOT" else f"{op}({ins})"
    return compile_ok(
        f"""
        TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean) IS
        BEGIN
            y := {expr}
        END;
        SIGNAL u: t;
        """
    )


GATE_CASES = [
    ("AND", 2), ("AND", 3),
    ("OR", 2), ("OR", 3),
    ("NAND", 2), ("NAND", 3),
    ("NOR", 2), ("NOR", 3),
    ("XOR", 2), ("XOR", 3),
    ("EQUAL", 2),
    ("NOT", 1),
]


class TestOpcodeAgreement:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op,arity", GATE_CASES)
    def test_all_operand_combinations(self, op, arity, backend):
        """One lane per element of {0,1,UNDEF,NOINFL}^arity: the
        compiled function must reproduce the scalar gate table."""
        circuit = _gate_circuit(op, arity)
        combos = list(itertools.product(ALL_LOGIC, repeat=arity))
        sim = _codegen_sim(circuit, len(combos), backend)
        for j in range(arity):
            sim.poke_lanes(f"i{j}", [combo[j] for combo in combos])
        sim.step()
        got = [vals[0] for vals in sim.peek_lanes("y")]
        for k, combo in enumerate(combos):
            expected = GATE_FUNCTIONS[op](list(combo))
            assert got[k] is expected, (
                f"{op}{combo} [{backend}]: codegen lane {k} gave "
                f"{got[k]}, scalar table says {expected}"
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equal_against_constants(self, backend):
        """EQUAL with a constant operand exercises the constant-folded
        emission path (``x ^ 0``/``x & M`` elided)."""
        for const in ("0", "1"):
            circuit = compile_ok(
                f"""
                TYPE t = COMPONENT (IN i0: boolean; OUT y: boolean) IS
                BEGIN y := EQUAL(i0, {const}) END;
                SIGNAL u: t;
                """
            )
            sim = _codegen_sim(circuit, len(ALL_LOGIC), backend)
            sim.poke_lanes("i0", ALL_LOGIC)
            sim.step()
            got = [v[0] for v in sim.peek_lanes("y")]
            ref = circuit.simulator(engine="batched", lanes=len(ALL_LOGIC))
            ref.poke_lanes("i0", ALL_LOGIC)
            ref.step()
            assert got == [v[0] for v in ref.peek_lanes("y")]

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=30, deadline=None)
    def test_random_lane_mix_halfadder(self, seed):
        """Random 4-valued stimuli on the halfadder: every codegen lane
        equals a scalar dataflow run with that lane's pokes."""
        import random as _random

        circuit = _halfadder()
        rng = _random.Random(seed)
        lanes = rng.randint(1, 9)
        a = [rng.choice(ALL_LOGIC) for _ in range(lanes)]
        b = [rng.choice(ALL_LOGIC) for _ in range(lanes)]
        sim = _codegen_sim(circuit, lanes)
        sim.poke_lanes("a", a)
        sim.poke_lanes("b", b)
        sim.step()
        s = sim.peek_lanes("s")
        cout = sim.peek_lanes("cout")
        for k in range(lanes):
            ref = circuit.simulator(engine="dataflow")
            ref.poke("a", a[k])
            ref.poke("b", b[k])
            ref.step()
            assert [str(v) for v in ref.peek("s")] == [str(v) for v in s[k]]
            assert [str(v) for v in ref.peek("cout")] == [
                str(v) for v in cout[k]
            ]


# -- the NOINFL amplification path ----------------------------------------


class TestAmplification:
    NOINFL_FEED = """
    TYPE t = COMPONENT (IN a, g: boolean; OUT y: boolean) IS
    SIGNAL p: multiplex;
    BEGIN
        IF g THEN p := 1 END;
        y := AND(a, p)
    END;
    SIGNAL u: t;
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_off_guard_noinfl_reads_as_undef(self, backend):
        """With the guard off, ``p`` is NOINFL; the gate input must
        amplify it to UNDEF exactly as the interpreters do."""
        circuit = compile_ok(self.NOINFL_FEED)
        cases = [(a, g) for a in ALL_LOGIC for g in (Logic.ZERO, Logic.ONE)]
        sim = _codegen_sim(circuit, len(cases), backend)
        sim.poke_lanes("a", [a for a, _ in cases])
        sim.poke_lanes("g", [g for _, g in cases])
        sim.step()
        got = [v[0] for v in sim.peek_lanes("y")]
        for k, (a, g) in enumerate(cases):
            ref = circuit.simulator(engine="dataflow")
            ref.poke("a", a)
            ref.poke("g", g)
            ref.step()
            assert got[k] is ref.peek("y")[0], (backend, a, g)


# -- generated-source golden ----------------------------------------------


class TestGeneratedSource:
    def _mux4_step(self):
        circuit = repro.compile_text(programs.ALL_PROGRAMS["mux4"], name="mux4")
        return compile_step(circuit.simulator(engine="batched", lanes=8)
                            ._schedule, backend="int")

    def test_mux4_matches_golden(self):
        """The emitted int-backend source for the stdlib mux4 design.
        On an intended emitter change, regenerate with
        ``CompiledStep.source`` and update the golden file."""
        step = self._mux4_step()
        assert step.source == GOLDEN.read_text(), (
            "generated source drifted from tests/golden/"
            "mux4_codegen_int.txt -- if the emission change is "
            "intended, rewrite the golden file from CompiledStep.source"
        )

    def test_source_shape(self):
        """Structural invariants the emitter must keep: a single
        function, locals-only dataflow, no per-opcode dispatch, and a
        bulk store of both planes."""
        step = self._mux4_step()
        src = step.source
        assert src.startswith("def zeus_step(")
        assert "for op in" not in src  # no interpreter dispatch loop
        assert "vals0[:] = [" in src and "vals1[:] = [" in src
        assert isinstance(step, CompiledStep)
        assert step.backend == "int"
        assert step.n_ops > 0
        # poke_ok covers exactly the compiled input-default classes
        assert step.poke_ok and all(isinstance(i, int) for i in step.poke_ok)

    @needs_numpy
    def test_numpy_variant_compiles_same_schedule(self):
        circuit = repro.compile_text(programs.ALL_PROGRAMS["mux4"], name="mux4")
        sched = circuit.simulator(engine="batched", lanes=8)._schedule
        step = compile_step(sched, backend="numpy", lanes=130)
        assert step.backend == "numpy"
        assert step.words == words_for(130) == 3
        assert "I2W(" in step.source or "Z" in step.source


# -- exotic pokes: fallback and demotion ----------------------------------


class TestExoticPokes:
    GUARDED = TestAmplification.NOINFL_FEED

    def test_int_backend_falls_back_per_pass(self):
        """A poke on a multiplex (non-input-default) class cannot be
        merged by the compiled function: the pass runs on the
        interpreter (matching plain batched exactly), and the compiled
        path resumes after unpoke."""
        circuit = compile_ok(self.GUARDED)
        sim = _codegen_sim(circuit, 4)
        ref = circuit.simulator(engine="batched", lanes=4)
        for s in (sim, ref):
            s.poke_lanes("a", [Logic.ONE] * 4)
            s.poke("u.p", 1)  # internal multiplex net: exotic
            s.step()
        assert sim._cg is not None  # int backend never demotes
        assert not sim._cg_pokes_ok  # ... but this pass interpreted
        assert sim.peek_lanes("y") == ref.peek_lanes("y")
        for s in (sim, ref):
            s.unpoke("u.p")
            s.poke_lanes("g", [Logic.ONE] * 4)
            s.step()
        assert sim._cg_pokes_ok  # compiled path resumed
        assert [v[0] for v in sim.peek_lanes("y")] == [Logic.ONE] * 4
        assert sim.peek_lanes("y") == ref.peek_lanes("y")

    def test_noinfl_lane_poke_is_exotic_but_correct(self):
        circuit = _gate_circuit("AND", 2)
        sim = _codegen_sim(circuit, 4)
        sim.poke_lanes("i0", [Logic.NOINFL, Logic.ONE, Logic.ZERO, Logic.ONE])
        sim.poke_lanes("i1", [Logic.ONE] * 4)
        sim.step()
        got = [v[0] for v in sim.peek_lanes("y")]
        ref = circuit.simulator(engine="batched", lanes=4)
        ref.poke_lanes("i0", [Logic.NOINFL, Logic.ONE, Logic.ZERO, Logic.ONE])
        ref.poke_lanes("i1", [Logic.ONE] * 4)
        ref.step()
        assert got == [v[0] for v in ref.peek_lanes("y")]

    @needs_numpy
    def test_numpy_backend_demotes_and_reset_restores(self):
        circuit = compile_ok(self.GUARDED)
        sim = _codegen_sim(circuit, 4, backend="numpy")
        reason0 = sim.engine_reason
        sim.poke("u.p", 1)
        sim.step()
        assert sim._cg is None  # permanently demoted ...
        assert "demoted" in sim.engine_reason
        assert [v[0] for v in sim.peek_lanes("y")] == [Logic.UNDEF] * 4
        sim.reset_state()
        assert sim._cg is sim._cg_compiled  # ... until reset_state
        assert sim.engine_reason == reason0
        sim.poke_lanes("a", [Logic.ONE] * 4)
        sim.poke_lanes("g", [Logic.ONE] * 4)
        sim.step()
        assert [v[0] for v in sim.peek_lanes("y")] == [Logic.ONE] * 4


# -- registers, RNG contract, reset across backends -----------------------


class TestStateful:
    REGGED = """
    TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL r: REG;
    BEGIN
        IF RSET THEN r.in := 0 ELSE r.in := NOT r.out END;
        y := AND(a, r.out)
    END;
    SIGNAL u: t;
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_register_stream_matches_batched(self, backend):
        circuit = compile_ok(self.REGGED)
        sims = {
            "codegen": _codegen_sim(circuit, 3, backend),
            "batched": circuit.simulator(engine="batched", lanes=3),
        }
        rows = {name: [] for name in sims}
        for name, sim in sims.items():
            sim.poke_lanes("a", [1, 1, 0])
            sim.poke("RSET", 1)
            sim.step(2)
            sim.poke("RSET", 0)
            for _ in range(6):
                sim.step()
                rows[name].append(
                    tuple(
                        tuple(str(v) for v in lane)
                        for lane in sim.peek_lanes("y")
                    )
                    + tuple(
                        tuple(sorted(
                            (k, str(v))
                            for k, v in sim.registers(lane=ln).items()
                        ))
                        for ln in range(3)
                    )
                )
        assert rows["codegen"] == rows["batched"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reset_state_restarts_the_run(self, backend):
        circuit = compile_ok(self.REGGED)
        sim = _codegen_sim(circuit, 2, backend)

        def run():
            sim.poke_lanes("a", [1, 0])
            sim.poke("RSET", 1)
            sim.step(2)
            sim.poke("RSET", 0)
            sim.step(3)
            return (
                [[str(v) for v in lane] for lane in sim.peek_lanes("y")],
                {k: str(v) for k, v in sim.registers().items()},
            )

        first = run()
        sim.reset_state()
        assert sim.cycle == 0
        assert run() == first


# -- four-engine differential fuzz slice ----------------------------------


@pytest.mark.fuzz
class TestFourEngineDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_full_repertoire_slice(self, seed):
        """dataflow (oracle) vs levelized vs batched vs codegen, lane
        by lane, over the extended generator's repertoire."""
        prog = generate_program(seed)
        result = differential_check(prog.text, seed=seed)
        assert result, f"seed {seed}: {result.detail}\n{prog.text}"


# -- numpy-absent degradation ---------------------------------------------


class TestNumpyAbsent:
    def test_auto_stays_int_without_numpy(self, monkeypatch):
        monkeypatch.setattr(codegen, "HAVE_NUMPY", False)
        assert choose_backend(NUMPY_LANE_THRESHOLD * 4) == "int"

    def test_explicit_numpy_request_degrades_gracefully(self, monkeypatch):
        monkeypatch.setattr(codegen, "HAVE_NUMPY", False)
        circuit = _gate_circuit("AND", 2)
        with pytest.raises(CodegenError, match="numpy"):
            compile_step(circuit.simulator(engine="batched", lanes=4)
                         ._schedule, backend="numpy", lanes=4)
        # the Simulator swallows the CodegenError into a reasoned
        # fallback to the interpreted batched path
        sim = circuit.simulator(engine="codegen", lanes=4, backend="numpy")
        assert sim._cg is None
        assert "fallback" in sim.engine_reason
        sim.poke_lanes("i0", [1, 1, 0, 0])
        sim.poke_lanes("i1", [1, 0, 1, 0])
        sim.step()
        got = [v[0] for v in sim.peek_lanes("y")]
        assert got == [Logic.ONE, Logic.ZERO, Logic.ZERO, Logic.ZERO]


# -- flight recorder regressions (reset + rebind) -------------------------


class TestFlightRecorderReset:
    SRC = TestStateful.REGGED

    def _run(self, sim, cycles):
        sim.poke("RSET", 1)
        sim.step(1)
        sim.poke("RSET", 0)
        sim.poke("a", 1)
        sim.step(cycles - 1)

    def test_reset_state_clears_ring_events_and_dropped(self):
        circuit = compile_ok(self.SRC)
        sim = circuit.simulator(flight=2)
        self._run(sim, 5)
        assert len(sim.flight) == 2
        assert sim.flight.dropped == 3
        assert list(sim.flight.events())
        sim.reset_state()
        assert len(sim.flight) == 0
        assert sim.flight.dropped == 0
        assert not list(sim.flight.events())
        # a fresh run records only post-reset cycles
        self._run(sim, 1)
        assert [rec.cycle for rec in sim.flight.records] == [0]

    def test_reset_drops_cached_producer_map(self):
        circuit = compile_ok(self.SRC)
        sim = circuit.simulator(flight=4)
        self._run(sim, 2)
        sim.flight.producers()
        assert sim.flight._producers is not None
        sim.reset_state()
        assert sim.flight._producers is None

    def test_rebinding_recorder_drops_previous_sim_history(self):
        recorder = FlightRecorder(8)
        first = compile_ok(self.SRC).simulator(flight=recorder)
        self._run(first, 12)
        assert recorder.dropped > 0 and len(recorder) == 8
        recorder.producers()
        other = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            SIGNAL u: t;
            """
        ).simulator(flight=recorder)
        assert recorder.sim is other
        assert len(recorder) == 0
        assert recorder.dropped == 0
        assert recorder._producers is None

    def test_rebinding_same_sim_is_a_noop(self):
        recorder = FlightRecorder(8)
        sim = compile_ok(self.SRC).simulator(flight=recorder)
        self._run(sim, 3)
        kept = len(recorder)
        recorder.bind(sim)
        assert len(recorder) == kept

    @pytest.mark.parametrize("engine", ["levelized", "codegen"])
    def test_explain_window_never_spans_a_reset(self, engine):
        """The regression the sweep fixes: pre-reset snapshots leaking
        into a post-reset ``zeusc explain`` window."""
        from repro.obs import explain

        circuit = compile_ok(self.SRC)
        kwargs = {"lanes": 4} if engine == "codegen" else {}
        sim = circuit.simulator(engine=engine, flight=16, **kwargs)
        self._run(sim, 6)
        sim.reset_state()
        sim.poke("RSET", 1)
        sim.step()
        report = explain(sim, "u.y", cycle=0)
        assert sim.flight.first_cycle == sim.flight.last_cycle == 0
        assert report is not None
