"""Constant expression evaluation tests (sections 3.1, 4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.consteval import (
    const_leaves,
    const_width,
    eval_condition,
    eval_const,
    eval_int,
)
from repro.core.elaborate import build_pervasive_env
from repro.core.symbols import ConstBinding, Env, LoopVar
from repro.core.values import Logic
from repro.lang import ElaborationError, Parser


def ev(text, **bindings):
    env = Env(parent=build_pervasive_env())
    for name, value in bindings.items():
        env.bind(name, ConstBinding(value))
    parser = Parser(text)
    expr = parser.parse_const_expression()
    return eval_const(expr, env)


def ev_constant(text, **bindings):
    env = Env(parent=build_pervasive_env())
    for name, value in bindings.items():
        env.bind(name, ConstBinding(value))
    parser = Parser(text)
    expr = parser.parse_constant()
    return eval_const(expr, env)


class TestArithmetic:
    def test_precedence(self):
        assert ev("2+3*4") == 14

    def test_parentheses(self):
        assert ev("(2+3)*4") == 20

    def test_unary_minus(self):
        assert ev("-3+5") == 2

    def test_div_mod(self):
        assert ev("7 DIV 2") == 3
        assert ev("7 MOD 2") == 1

    def test_div_by_zero(self):
        with pytest.raises(ElaborationError):
            ev("1 DIV 0")

    def test_mod_by_zero(self):
        with pytest.raises(ElaborationError):
            ev("1 MOD 0")

    def test_octal(self):
        assert ev("17B") == 15

    def test_names(self):
        assert ev("n DIV 2", n=10) == 5

    def test_undeclared_name(self):
        with pytest.raises(ElaborationError):
            ev("zzz + 1")

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_add_sub_match_python(self, a, b):
        assert ev(f"a + b", a=a, b=b) == a + b
        assert ev(f"a - b", a=a, b=b) == a - b

    @given(st.integers(0, 100), st.integers(1, 20))
    def test_div_mod_identity(self, a, b):
        q = ev("a DIV b", a=a, b=b)
        r = ev("a MOD b", a=a, b=b)
        assert q * b + r == a
        assert 0 <= r < b


class TestRelationsAndBooleans:
    def test_relations(self):
        assert ev("3 < 4") is True
        assert ev("3 >= 4") is False
        assert ev("3 = 3") is True
        assert ev("3 <> 3") is False
        assert ev("4 <= 4") is True
        assert ev("5 > 4") is True

    def test_and_or_not(self):
        assert ev("NOT (1 = 2)") is True
        assert ev("(1 = 1) AND (2 = 2)") is True
        assert ev("(1 = 2) OR (2 = 2)") is True

    def test_condition_nonzero(self):
        env = Env(parent=build_pervasive_env())
        parser = Parser("2")
        assert eval_condition(parser.parse_const_expression(), env) is True

    def test_when_style_condition(self):
        assert ev("i MOD 2 <> 0", i=3) is True
        assert ev("i MOD 2 <> 0", i=4) is False


class TestPredefinedFunctions:
    def test_min_max(self):
        assert ev("min(3, 7)") == 3
        assert ev("max(3, 7)") == 7
        assert ev("min(3, 7, 1)") == 1

    def test_odd(self):
        assert ev("odd(3)") is True
        assert ev("odd(4)") is False

    def test_unknown_function(self):
        with pytest.raises(ElaborationError):
            ev("gcd(3, 4)")


class TestSignalConstants:
    def test_tuple(self):
        v = ev_constant("(0, 1, 0)")
        assert v == (Logic.ZERO, Logic.ONE, Logic.ZERO)

    def test_nested(self):
        v = ev_constant("((0,1),(1,0))")
        assert const_width(v) == 4
        assert const_leaves(v) == [Logic.ZERO, Logic.ONE, Logic.ONE, Logic.ZERO]

    def test_bin_in_constant(self):
        v = ev_constant("BIN(10, 5)")
        assert const_width(v) == 5
        assert const_leaves(v)[1] is Logic.ONE  # bit 2 of 10

    def test_undef_noinfl_names(self):
        assert ev_constant("(0, UNDEF)")[1] is Logic.UNDEF
        assert ev_constant("(NOINFL, 1)")[0] is Logic.NOINFL

    def test_non_bit_in_tuple_rejected(self):
        with pytest.raises(ElaborationError):
            ev_constant("(0, 2)")

    def test_signal_const_equality(self):
        assert ev_constant("(0,1) = (0,1)") is True
        assert ev_constant("(0,1) <> (1,1)") is True

    def test_bin_overflow(self):
        with pytest.raises(ElaborationError):
            ev_constant("BIN(32, 5)")


class TestEvalInt:
    def test_requires_number(self):
        env = Env(parent=build_pervasive_env())
        env.bind("t", ConstBinding((Logic.ZERO,)))
        expr = Parser("t").parse_const_expression()
        with pytest.raises(ElaborationError):
            eval_int(expr, env)

    def test_loop_var(self):
        env = Env(parent=build_pervasive_env())
        env.bind("i", LoopVar(5))
        expr = Parser("2*i+1").parse_const_expression()
        assert eval_int(expr, env) == 11
