"""Elaboration tests: instantiation, meta-programming, laziness,
connections, scoping (sections 3, 4)."""

import pytest

import repro
from repro.core import elaborate
from repro.lang import CheckError, ElaborationError, TypeError_, parse

from zeus_test_utils import compile_ok


def elab(text, top=None):
    return elaborate(parse(text), top=top)


class TestInstantiation:
    def test_top_defaults_to_last_component_signal(self):
        d = elab(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := a END;
            SIGNAL first, second: t;
            """
        )
        assert d.name == "second"

    def test_top_by_name(self):
        d = elab(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := a END;
            SIGNAL first, second: t;
            """,
            top="first",
        )
        assert d.name == "first"

    def test_unknown_top_rejected(self):
        with pytest.raises(ElaborationError, match="no top-level"):
            elab(
                """
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN y := a END;
                SIGNAL x: t;
                """,
                top="nope",
            )

    def test_program_without_component_signal_rejected(self):
        with pytest.raises(ElaborationError):
            elab("SIGNAL x: boolean;")

    def test_ports_have_modes(self):
        d = elab(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        modes = {p.name: p.mode for p in d.netlist.ports}
        assert modes == {"a": "IN", "y": "OUT", "z": "INOUT"}

    def test_function_type_cannot_be_signal(self):
        with pytest.raises(TypeError_, match="function component"):
            elab(
                """
                TYPE f = COMPONENT (IN a: boolean) : boolean IS
                BEGIN RESULT a END;
                SIGNAL s: f;
                """
            )

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ElaborationError, match="duplicate"):
            elab("CONST a = 1; a = 2;")


class TestParameterizedTypes:
    def test_array_width_from_parameter(self):
        d = elab(
            """
            TYPE bo(n) = ARRAY [1..n] OF boolean;
            t = COMPONENT (IN a: bo(6); OUT y: bo(6)) IS
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        assert len(d.netlist.port("a").nets) == 6

    def test_wrong_arity_rejected(self):
        with pytest.raises(TypeError_, match="expects 1 parameter"):
            elab(
                """
                TYPE bo(n) = ARRAY [1..n] OF boolean;
                t = COMPONENT (IN a: bo(2, 3)) IS BEGIN END;
                SIGNAL u: t;
                """
            )

    def test_parameter_arithmetic(self):
        d = elab(
            """
            TYPE bo(n) = ARRAY [1..2*n+1] OF boolean;
            t = COMPONENT (IN a: bo(3); OUT y: bo(3)) IS
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        assert len(d.netlist.port("a").nets) == 7

    def test_decreasing_bounds_rejected(self):
        with pytest.raises(TypeError_):
            elab(
                """
                TYPE t = COMPONENT (IN a: ARRAY [5..1] OF boolean) IS BEGIN END;
                SIGNAL u: t;
                """
            )


class TestMetaProgramming:
    def test_for_replication(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..4] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN
                FOR i := 1 TO 4 DO y[i] := NOT a[i] END
            END;
            SIGNAL u: t;
            """
        )
        assert circuit.stats()["gates"] == 4

    def test_for_downto(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                                OUT y: ARRAY [1..3] OF boolean) IS
            BEGIN
                FOR i := 3 DOWNTO 1 DO y[i] := a[4-i] END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [1, 0, 0])
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["0", "0", "1"]

    def test_empty_for_range(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN
                FOR i := 1 TO 0 DO y := 1 END;
                y := a
            END;
            SIGNAL u: t;
            """
        )

    def test_when_picks_first_true_arm(self):
        circuit = compile_ok(
            """
            TYPE t(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN
                WHEN n > 2 THEN y := NOT a
                OTHERWISEWHEN n > 1 THEN y := a
                OTHERWISE y := 0
                END
            END;
            SIGNAL u: t(2);
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"  # the middle arm

    def test_when_otherwise(self):
        circuit = compile_ok(
            """
            TYPE t(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN
                WHEN n > 2 THEN y := NOT a OTHERWISE y := 0 END
            END;
            SIGNAL u: t(1);
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "0"

    def test_loop_variable_scoped(self):
        with pytest.raises(ElaborationError, match="undeclared"):
            elab(
                """
                TYPE t = COMPONENT (IN a: ARRAY[1..2] OF boolean;
                                    OUT y: boolean) IS
                BEGIN
                    FOR i := 1 TO 2 DO * := a[i] END;
                    y := a[i]
                END;
                SIGNAL u: t;
                """
            )


class TestRecursionAndLaziness:
    def test_recursive_type_with_when_terminates(self):
        d = elab(
            """
            TYPE chain(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL rest: chain(n-1);
            BEGIN
                WHEN n = 0 THEN y := a
                OTHERWISE
                    rest.a := NOT a;
                    y := NOT rest.y
                END
            END;
            SIGNAL u: chain(5);
            """
        )
        assert d.netlist.stats()["gates"] == 10  # two NOTs per level

    def test_unreferenced_instances_not_generated(self):
        d = elab(
            """
            TYPE big = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL unused: ARRAY [1..100] OF COMPONENT (IN p: boolean;
                                                        OUT q: boolean) IS
            BEGIN q := NOT p END;
            BEGIN y := a END;
            SIGNAL u: big;
            """
        )
        assert d.netlist.stats()["gates"] == 0

    def test_infinite_recursion_diagnosed(self):
        with pytest.raises(ElaborationError, match="recursion"):
            elab(
                """
                TYPE loop(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL inner: loop(n+1);
                BEGIN inner.a := a; y := inner.y END;
                SIGNAL u: loop(1);
                """
            )


class TestConnections:
    def test_positional_modes(self):
        circuit = compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL g: inv;
            BEGIN g(a, y) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_wrong_actual_count(self):
        with pytest.raises(TypeError_, match="needs 2 actuals"):
            elab(
                """
                TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN y := NOT a END;
                t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL g: inv;
                BEGIN g(a) END;
                SIGNAL u: t;
                """
            )

    def test_array_connection_distributes(self):
        circuit = compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            t = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                           OUT y: ARRAY [1..3] OF boolean) IS
            SIGNAL g: ARRAY [1..3] OF inv;
            BEGIN g(a, y) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [1, 0, 1])
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["0", "1", "0"]

    def test_tuple_actuals_flatten(self):
        # "the parenthesis structure within the n signal expressions is
        # unimportant" (section 4.7).
        circuit = compile_ok(
            """
            TYPE h = COMPONENT (IN a: ARRAY [1..5] OF boolean;
                                OUT b: COMPONENT (b1,c1,d1,e1,f1: boolean));
            t = COMPONENT (IN p: ARRAY [1..2] OF boolean;
                           IN q: ARRAY [1..3] OF boolean;
                           OUT y: boolean) IS
            SIGNAL s: COMPONENT (IN a: ARRAY [1..5] OF boolean;
                                 OUT o: ARRAY [1..5] OF boolean) IS
            BEGIN o := a END;
            SIGNAL z: ARRAY [1..5] OF multiplex;
            BEGIN
                s((p, q), (z[1], z[2], z[3], z[4], z[5]));
                y := z[1]
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("p", [1, 0])
        sim.poke("q", [0, 0, 0])
        sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_star_in_tuple_absorbs(self):
        circuit = compile_ok(
            """
            TYPE two = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                                  OUT y: boolean) IS
            BEGIN y := a[1] END;
            t = COMPONENT (IN p: boolean; OUT y: boolean) IS
            SIGNAL g: two;
            BEGIN g((p, *), y) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("p", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_identical_connections_allowed(self):
        # The paper's fulladder wires h2.a twice identically.
        compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL g: inv;
            BEGIN g(a, y); g(a, y) END;
            SIGNAL u: t;
            """
        )

    def test_abbreviated_field_over_array(self):
        # r.in denotes r[1..n].in (section 4.1).
        circuit = compile_ok(
            """
            TYPE cell = COMPONENT (IN in: boolean; OUT out: boolean) IS
            BEGIN out := in END;
            t = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                           OUT y: ARRAY [1..3] OF boolean) IS
            SIGNAL r: ARRAY [1..3] OF cell;
            BEGIN
                r.in := a;
                y := r.out
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [0, 1, 0])
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["0", "1", "0"]


class TestFunctionComponents:
    def test_call_with_explicit_type_args(self):
        circuit = compile_ok(
            """
            TYPE bo(n) = ARRAY [1..n] OF boolean;
            first(n) = COMPONENT (IN a: bo(n)) : boolean IS
            BEGIN RESULT a[1] END;
            t = COMPONENT (IN a: bo(3); OUT y: boolean) IS
            BEGIN y := first[3](a) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [1, 0, 0])
        sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_call_with_inferred_type_args(self):
        circuit = compile_ok(
            """
            TYPE bo(n) = ARRAY [1..n] OF boolean;
            first(n) = COMPONENT (IN a: bo(n)) : boolean IS
            BEGIN RESULT a[1] END;
            t = COMPONENT (IN a: bo(3); OUT y: boolean) IS
            BEGIN y := first(a) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [0, 1, 1])
        sim.step()
        assert str(sim.peek_bit("y")) == "0"

    def test_result_outside_function_rejected(self):
        with pytest.raises(TypeError_, match="RESULT"):
            elab(
                """
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN RESULT a END;
                SIGNAL u: t;
                """
            )

    def test_conditional_results_make_multiplex(self):
        circuit = compile_ok(
            """
            TYPE pick = COMPONENT (IN sel, a, b: boolean) : boolean IS
            BEGIN
                IF sel THEN RESULT a ELSE RESULT b END
            END;
            t = COMPONENT (IN sel, a, b: boolean; OUT y: boolean) IS
            BEGIN y := pick(sel, a, b) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("sel", 1); sim.poke("a", 0); sim.poke("b", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "0"
        sim.poke("sel", 0)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_nested_function_calls(self):
        circuit = compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean) : boolean IS
            BEGIN RESULT NOT a END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := inv(inv(a)) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"


class TestScoping:
    def test_uses_wall_blocks_unlisted(self):
        with pytest.raises(ElaborationError, match="undeclared"):
            elab(
                """
                CONST k = 3;
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                USES ;
                SIGNAL s: ARRAY [1..k] OF boolean;
                BEGIN y := a END;
                SIGNAL u: t;
                """
            )

    def test_uses_wall_admits_listed(self):
        compile_ok(
            """
            CONST k = 3;
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            USES k;
            SIGNAL s: ARRAY [1..k] OF boolean;
            BEGIN y := a; s[1] := a; * := s[1]; s[2] := a; * := s[2];
                  s[3] := a; * := s[3] END;
            SIGNAL u: t;
            """
        )

    def test_pervasive_types_cross_uses_wall(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            USES ;
            SIGNAL r: REG;
            BEGIN r(a, y) END;
            SIGNAL u: t;
            """
        )

    def test_with_opens_pins(self):
        circuit = compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            t = COMPONENT (IN p: boolean; OUT q: boolean) IS
            SIGNAL g: inv;
            BEGIN
                WITH g DO
                    a := p;
                    q := y
                END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("p", 0)
        sim.step()
        assert str(sim.peek_bit("q")) == "1"

    def test_inner_shadows_outer(self):
        circuit = compile_ok(
            """
            CONST n = 2;
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            CONST n = 4;
            SIGNAL s: ARRAY [1..n] OF boolean;
            BEGIN
                FOR i := 1 TO 4 DO s[i] := a; * := s[i] END;
                y := a
            END;
            SIGNAL u: t;
            """
        )
        assert circuit is not None
