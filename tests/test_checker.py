"""Checker internals: dependency graph, topological order, diagnostics."""

import pytest

import repro
from repro.core import checker, elaborate
from repro.lang import CheckError, parse

from zeus_test_utils import compile_ok


def design_of(text, top=None):
    return elaborate(parse(text), top=top)


SIMPLE = """
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
SIGNAL s: boolean;
BEGIN
    s := AND(a, b);
    y := NOT s
END;
SIGNAL u: t;
"""


class TestDependencyGraph:
    def test_edges_follow_dataflow(self):
        d = design_of(SIMPLE)
        deps = checker.dependency_graph(d.netlist)
        names = {n.id: n.name for n in d.netlist.nets}
        # y depends (transitively) on s's gate; s's gate on a and b.
        y = next(i for i, n in names.items() if n == "u.y")
        assert deps[y]  # the NOT gate output

    def test_topological_order_is_consistent(self):
        d = design_of(SIMPLE)
        order = checker.topological_order(d.netlist)
        pos = {nid: i for i, nid in enumerate(order)}
        deps = checker.dependency_graph(d.netlist)
        for dst, srcs in deps.items():
            for src in srcs:
                assert pos[src] < pos[dst]

    def test_reg_breaks_cycle(self):
        d = design_of(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL r: REG;
            BEGIN r.in := XOR(a, r.out); y := r.out END;
            SIGNAL u: t;
            """
        )
        checker.topological_order(d.netlist)  # no exception

    def test_cycle_message_names_nets(self):
        d = design_of(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s1, s2: boolean;
            BEGIN s1 := NOT s2; s2 := NOT s1; y := s1 END;
            SIGNAL u: t;
            """
        )
        with pytest.raises(CheckError) as err:
            checker.topological_order(d.netlist)
        assert "s1" in str(err.value) or "s2" in str(err.value)


class TestDiagnostics:
    def test_lenient_collects_multiple_errors(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL p, q: boolean;
            BEGIN
                p := 1; p := 0;
                q := 1; q := 0;
                y := a; * := p; * := q
            END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        assert len(circuit.diagnostics.errors) >= 2

    def test_undriven_read_warns(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL ghost: boolean;
            BEGIN y := AND(a, ghost) END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        warnings = [d.message for d in circuit.diagnostics.warnings]
        assert any("ghost" in w for w in warnings)

    def test_clean_program_no_diagnostics(self):
        circuit = compile_ok(SIMPLE)
        assert not circuit.diagnostics.errors
        assert not circuit.diagnostics.warnings

    def test_diagnostic_rendering_includes_location(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL p: boolean;
            BEGIN p := 1; p := 0; y := a; * := p END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        text = circuit.diagnostics.render()
        assert "unconditional" in text


class TestNetlistQueries:
    def test_stats_keys(self):
        circuit = compile_ok(SIMPLE)
        stats = circuit.stats()
        assert set(stats) == {
            "nets", "gates", "connections", "registers", "alias_merges"
        }

    def test_port_lookup(self):
        circuit = compile_ok(SIMPLE)
        assert circuit.netlist.port("a").mode == "IN"
        with pytest.raises(KeyError):
            circuit.netlist.port("zz")

    def test_alias_class(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean;
                                p, q: multiplex) IS
            BEGIN p == q; y := a; * := p END;
            SIGNAL u: t;
            """
        )
        nl = circuit.netlist
        p = nl.port("p").nets[0]
        q = nl.port("q").nets[0]
        assert nl.find(p) is nl.find(q)
        assert {n.name for n in nl.alias_class(p)} == {"u.p", "u.q"}

    def test_describe(self):
        circuit = compile_ok(SIMPLE)
        text = circuit.netlist.describe()
        assert "gates" in text and "registers" in text
