"""Observability layer tests: spans, simulator metrics, export, CLI."""

import json

import pytest

import repro
from repro.cli import main
from repro.obs import (
    SimMetrics,
    SpanRegistry,
    metrics_report,
    validate_report,
    write_metrics,
)
from repro.obs import spans as obs_spans
from repro.stdlib import programs

from zeus_test_utils import compile_ok

COUNTER = """
TYPE t = COMPONENT (IN en: boolean; OUT q0: boolean) IS
SIGNAL r0: REG;
BEGIN
    IF RSET THEN r0.in := 0
    ELSE IF en THEN r0.in := NOT r0.out END;
    END;
    q0 := r0.out
END;
SIGNAL c: t;
"""


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


class TestSpans:
    def test_nesting_paths_and_depths(self):
        reg = SpanRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        paths = [s.path for s in reg.spans]
        assert paths == ["outer/inner", "outer"]  # completion order
        assert [s.depth for s in reg.spans] == [1, 0]

    def test_phase_totals_accumulate(self):
        reg = SpanRegistry()
        for _ in range(3):
            with reg.span("a"):
                pass
        totals = reg.phase_totals()
        assert set(totals) == {"a"}
        assert totals["a"] >= 0

    def test_self_times_exclude_children(self):
        reg = SpanRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        self_t = reg.self_times()
        totals = reg.phase_totals()
        assert self_t["outer"] <= totals["outer"]
        assert self_t["inner"] == pytest.approx(totals["inner"])

    def test_disabled_registry_records_nothing(self):
        reg = SpanRegistry()
        reg.enabled = False
        with reg.span("a") as sp:
            assert sp is None
        assert not reg.spans

    def test_reset_clears(self):
        reg = SpanRegistry()
        with reg.span("a"):
            pass
        reg.reset()
        assert not reg.spans

    def test_render_table(self):
        reg = SpanRegistry()
        with reg.span("phase"):
            pass
        text = reg.render()
        assert "phase" in text and "ms" in text

    def test_bounded_memory(self):
        reg = SpanRegistry(maxlen=4)
        for i in range(10):
            with reg.span(f"s{i}"):
                pass
        assert len(reg.spans) == 4
        assert reg.spans[-1].name == "s9"

    def test_compile_text_records_pipeline_phases(self):
        obs_spans.REGISTRY.reset()
        repro.compile_text(COUNTER)
        names = {s.name for s in obs_spans.REGISTRY.spans}
        assert {"compile", "lex", "parse", "elaborate", "check"} <= names
        # lex/parse/elaborate/check all nest under the compile span.
        for s in obs_spans.REGISTRY.spans:
            if s.name != "compile":
                assert s.path.startswith("compile/")
        obs_spans.REGISTRY.reset()

    def test_scoped_registry_swap(self):
        outer = obs_spans.REGISTRY
        with outer.scoped() as fresh:
            assert obs_spans.REGISTRY is fresh
            repro.compile_text(COUNTER)
            assert fresh.phase_totals()["compile"] > 0
        assert obs_spans.REGISTRY is outer


def counter_sim(**kwargs):
    circuit = compile_ok(COUNTER)
    sim = circuit.simulator(**kwargs)
    sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
    sim.poke("RSET", 0); sim.poke("en", 1); sim.step(8)
    return circuit, sim


class TestSimMetrics:
    def test_disabled_by_default(self):
        _, sim = counter_sim()
        assert not sim.metrics.enabled
        assert sim.metrics.cycles == 0
        assert sim.metrics.firings == 0

    def test_counter_activity(self):
        _, sim = counter_sim(metrics=True)
        m = sim.metrics
        assert m.cycles == 9
        assert len(m.firings_per_cycle) == 9
        assert sum(m.firings_per_cycle) == m.firings
        # Every net class fires exactly once per cycle in this design.
        assert len(set(m.firings_per_cycle)) == 1
        # q0 toggles on each of the 8 enabled cycles.
        toggles = dict((n, t) for n, t, _ in m.top_nets(len(m.net_names)))
        assert toggles["c.q0"] == 8
        # One REG, latching a driving value every cycle.
        assert m.latches == 9
        assert m.violations == 0
        assert m.propagation_steps == m.gate_evals + m.driver_evals

    def test_blackjack_deterministic_firing_rate(self):
        circuit = compile_ok(programs.ALL_PROGRAMS["blackjack"])
        sim = circuit.simulator(metrics=True)
        sim.poke("RSET", 1); sim.step()
        sim.poke("RSET", 0); sim.step(15)
        m = sim.metrics
        assert m.cycles == 16
        # The FSM fires a deterministic event count every cycle.
        assert len(set(m.firings_per_cycle)) == 1
        per_cycle = m.firings_per_cycle[0]
        assert per_cycle > 0
        assert m.firings == 16 * per_cycle
        cycle, firings = m.peak_cycle
        assert firings == per_cycle and 0 <= cycle < 16
        assert m.gate_evals > 0 and m.driver_evals > 0

    def test_peak_cycle_empty(self):
        m = SimMetrics([], [])
        assert m.peak_cycle == (-1, 0)

    def test_top_tables_ranked(self):
        _, sim = counter_sim(metrics=True)
        nets = sim.metrics.top_nets(3)
        assert len(nets) == 3
        assert nets[0][1] >= nets[1][1] >= nets[2][1]
        gates = sim.metrics.top_gates(2)
        assert gates[0][1] >= gates[1][1]

    def test_record_firing_compat(self):
        _, sim = counter_sim(record_firing=True)
        assert sim.record_firing
        assert sim.metrics.enabled
        assert sim.firing_log
        assert all(isinstance(name, str) for name, _ in sim.firing_log)

    def test_reset_state_clears_metrics(self):
        _, sim = counter_sim(metrics=True)
        sim.reset_state()
        m = sim.metrics
        assert m.cycles == 0 and m.firings == 0 and not m.firings_per_cycle

    def test_violation_tally(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL p: boolean;
            BEGIN
                IF a THEN p := 1 END;
                IF NOT a THEN p := 1 END;
                IF a THEN p := 0 END;
                y := p
            END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        sim = circuit.simulator(strict=False, metrics=True)
        sim.poke("a", 1)
        sim.step()
        assert sim.metrics.violations == len(sim.violations) > 0

    def test_render_mentions_key_counters(self):
        _, sim = counter_sim(metrics=True)
        text = sim.metrics.render()
        assert "net firings" in text
        assert "peak cycle" in text
        assert "hottest nets" in text


class TestExport:
    def test_report_validates(self):
        obs_spans.REGISTRY.reset()
        circuit = repro.compile_text(COUNTER)
        sim = circuit.simulator(metrics=True)
        sim.step(4)
        report = metrics_report(
            circuit, sim, obs_spans.REGISTRY, elapsed=0.01
        )
        validate_report(report)  # must not raise
        assert report["schema"] == "zeus.metrics/1"
        assert report["sim"]["cycles"] == 4
        assert report["compile"]["phases"]["compile"] > 0
        assert report["wall"]["cycles_per_s"] == pytest.approx(400.0)
        obs_spans.REGISTRY.reset()

    def test_report_without_sim_or_spans(self):
        circuit = repro.compile_text(COUNTER)
        report = metrics_report(circuit)
        validate_report(report)
        assert "sim" not in report
        assert report["design"]["registers"] == 1

    def test_top_caps_tables(self):
        circuit = repro.compile_text(COUNTER)
        sim = circuit.simulator(metrics=True)
        sim.step(2)
        report = metrics_report(circuit, sim, top=3)
        assert len(report["sim"]["nets"]) == 3

    def test_write_metrics_roundtrip(self, tmp_path):
        circuit = repro.compile_text(COUNTER)
        sim = circuit.simulator(metrics=True)
        sim.step(2)
        out = tmp_path / "m.json"
        write_metrics(str(out), metrics_report(circuit, sim))
        loaded = json.loads(out.read_text())
        validate_report(loaded)

    @pytest.mark.parametrize("bad", [
        {},
        {"schema": "zeus.metrics/1"},
        {"schema": "nope", "design": {}},
        {"schema": "zeus.metrics/1",
         "design": {"name": "x", "nets": "3", "gates": 0,
                    "connections": 0, "registers": 0}},
    ])
    def test_validator_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_report(bad)

    def test_validator_checks_cycle_series_length(self):
        circuit = repro.compile_text(COUNTER)
        sim = circuit.simulator(metrics=True)
        sim.step(2)
        report = metrics_report(circuit, sim)
        report["sim"]["firings_by_cycle"] = [1]
        with pytest.raises(ValueError):
            validate_report(report)


class TestProfileCli:
    def test_profile_builtin_blackjack(self, capsys):
        code, out, _ = run(
            ["profile", "--builtin", "blackjack", "--cycles", "8"], capsys
        )
        assert code == 0
        for phase in ("lex", "parse", "elaborate", "check"):
            assert phase in out
        assert "net firings" in out
        assert "cycles/sec" in out
        assert "hottest" in out

    def test_profile_writes_metrics(self, tmp_path, capsys):
        out_file = tmp_path / "prof.json"
        code, out, _ = run(
            ["profile", "--builtin", "adders", "--cycles", "4",
             "--poke", "a=3", "--poke", "b=1",
             "--metrics", str(out_file)],
            capsys,
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        validate_report(report)
        assert report["sim"]["cycles"] == 4

    def test_sim_metrics_flag(self, tmp_path, capsys):
        out_file = tmp_path / "sim.json"
        code, out, _ = run(
            ["sim", "--builtin", "blackjack", "--cycles", "4",
             "--metrics", str(out_file)],
            capsys,
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        validate_report(report)
        assert report["design"]["name"] == "bj"
        assert report["sim"]["firings"] > 0
        assert report["compile"]["phases"]["elaborate"] > 0

    def test_check_metrics_flag(self, tmp_path, capsys):
        out_file = tmp_path / "check.json"
        code, _, _ = run(
            ["check", "--builtin", "mux4", "--metrics", str(out_file)],
            capsys,
        )
        assert code == 0
        report = json.loads(out_file.read_text())
        validate_report(report)
        assert "sim" not in report

    def test_analyze_metrics_flag(self, tmp_path, capsys):
        out_file = tmp_path / "an.json"
        code, _, _ = run(
            ["analyze", "--builtin", "adders", "--metrics", str(out_file)],
            capsys,
        )
        assert code == 0
        validate_report(json.loads(out_file.read_text()))


class TestGateEvalAccounting:
    def test_counts_only_real_evaluations(self):
        # y = AND(a, s) with a=0 fires the AND immediately; s = NOT a
        # arriving later re-notifies the fired gate, which must NOT be
        # counted as another evaluation.
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s: boolean;
            BEGIN
                s := NOT a;
                y := AND(a, s)
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(metrics=True, engine="dataflow")
        sim.poke("a", 0)
        cycles = 5
        sim.step(cycles)
        m = sim.metrics
        evals = dict(zip(m.gate_labels, m.gate_eval_counts))
        fires = dict(zip(m.gate_labels, m.gate_fire_counts))
        (and_label,) = [g for g in m.gate_labels if g.startswith("AND")]
        assert fires[and_label] == cycles
        assert evals[and_label] == cycles


class TestEngineReporting:
    def test_engine_in_metrics_and_report(self):
        circuit, sim = counter_sim(metrics=True)
        assert sim.metrics.engine == sim.engine == "levelized"
        report = metrics_report(circuit, sim)
        validate_report(report)
        assert report["sim"]["engine"] == "levelized"
        assert "engine" in sim.metrics.render()

    def test_engine_survives_metrics_reset(self):
        _, sim = counter_sim(metrics=True)
        sim.reset_state()
        assert sim.metrics.engine == "levelized"
