"""Type system unit tests: widths, leaves, mode inheritance."""

import pytest

from repro.core.types import (
    BOOLEAN_T,
    MULTIPLEX_T,
    ArrayV,
    BasicV,
    ComponentV,
    ParamV,
    leaf_kinds,
    same_shape,
)
from repro.lang import TypeError_, ast

IN, OUT, INOUT = ast.Mode.IN, ast.Mode.OUT, ast.Mode.INOUT


class TestWidths:
    def test_basic(self):
        assert BOOLEAN_T.width == 1
        assert MULTIPLEX_T.width == 1

    def test_array(self):
        assert ArrayV(1, 8, BOOLEAN_T).width == 8

    def test_nested_array(self):
        assert ArrayV(1, 3, ArrayV(0, 3, BOOLEAN_T)).width == 12

    def test_empty_array_allowed(self):
        assert ArrayV(1, 0, BOOLEAN_T).width == 0

    def test_decreasing_bounds_rejected(self):
        with pytest.raises(TypeError_):
            ArrayV(5, 1, BOOLEAN_T)

    def test_component_width_is_interface(self):
        comp = ComponentV(
            "c",
            (
                ParamV("a", IN, ArrayV(1, 4, BOOLEAN_T)),
                ParamV("y", OUT, BOOLEAN_T),
            ),
        )
        assert comp.width == 5

    def test_same_shape(self):
        assert same_shape(ArrayV(1, 4, BOOLEAN_T), ArrayV(0, 3, MULTIPLEX_T))
        assert not same_shape(BOOLEAN_T, ArrayV(1, 2, BOOLEAN_T))


class TestLeaves:
    def test_natural_order(self):
        t = ArrayV(1, 2, ArrayV(1, 2, BOOLEAN_T))
        paths = [l.path for l in t.leaves("m")]
        assert paths == ["m[1][1]", "m[1][2]", "m[2][1]", "m[2][2]"]

    def test_component_paths(self):
        comp = ComponentV(
            "c",
            (
                ParamV("a", IN, BOOLEAN_T),
                ParamV("b", OUT, ArrayV(1, 2, BOOLEAN_T)),
            ),
        )
        leaves = list(comp.leaves("x"))
        assert [l.path for l in leaves] == ["x.a", "x.b[1]", "x.b[2]"]
        assert [l.mode for l in leaves] == [IN, OUT, OUT]

    def test_mode_inheritance_inner_wins(self):
        inner = ComponentV(
            "rec",
            (ParamV("p", IN, BOOLEAN_T), ParamV("q", INOUT, MULTIPLEX_T)),
        )
        outer = ComponentV("c", (ParamV("g", OUT, inner),))
        modes = {l.path: l.mode for l in outer.leaves()}
        # Explicit inner IN wins; inner INOUT inherits the outer OUT.
        assert modes["g.p"] is IN
        assert modes["g.q"] is OUT

    def test_leaf_kinds(self):
        t = ArrayV(1, 2, MULTIPLEX_T)
        assert leaf_kinds(t) == ["multiplex", "multiplex"]


class TestComponentQueries:
    def comp(self):
        return ComponentV(
            "c",
            (ParamV("a", IN, BOOLEAN_T), ParamV("y", OUT, BOOLEAN_T)),
            type_args=(4,),
        )

    def test_param_lookup(self):
        c = self.comp()
        assert c.param("a").mode is IN
        assert c.param_index("y") == 1

    def test_unknown_param(self):
        with pytest.raises(TypeError_):
            self.comp().param("zz")

    def test_describe_includes_args(self):
        assert self.comp().describe() == "c(4)"

    def test_record_vs_body_vs_function(self):
        record = ComponentV("r", ())
        assert record.is_record and not record.has_body
        fn = ComponentV("f", (), result=BOOLEAN_T)
        assert fn.is_function and not fn.is_record
