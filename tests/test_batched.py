"""The batched bit-parallel engine: plane encoding, opcode agreement
with the scalar gate tables, the :class:`BatchStimulus` API, lane
bookkeeping across ``reset_state``, the per-lane-dataflow fallback, and
the ``zeusc sim --batch`` surface.

Property-based parts use hypothesis; the exhaustive parts enumerate all
``4^k`` operand combinations for every batched gate opcode and check
each lane against :data:`repro.core.values.GATE_FUNCTIONS` (the scalar
single-source-of-truth table) *and* against a scalar dataflow run.
"""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.cli import main
from repro.core.batched import (
    LOGIC_PLANES,
    PLANE_LOGIC,
    BatchStimulus,
    broadcast,
    lane_value,
    pack,
    unpack,
)
from repro.core.values import GATE_FUNCTIONS, Logic
from repro.lang import SimulationError
from repro.obs import metrics_report, validate_report
from repro.obs import spans as _spans
from zeus_test_utils import compile_ok

ALL_LOGIC = [Logic.ZERO, Logic.ONE, Logic.UNDEF, Logic.NOINFL]

logic_values = st.sampled_from(ALL_LOGIC)


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


# -- plane encoding primitives -------------------------------------------


class TestPlaneEncoding:
    def test_encoding_table(self):
        # plane0 = "possibly 0", plane1 = "possibly 1"
        assert LOGIC_PLANES[Logic.ZERO] == (1, 0)
        assert LOGIC_PLANES[Logic.ONE] == (0, 1)
        assert LOGIC_PLANES[Logic.UNDEF] == (1, 1)
        assert LOGIC_PLANES[Logic.NOINFL] == (0, 0)
        for value, (b0, b1) in LOGIC_PLANES.items():
            assert PLANE_LOGIC[b0 | (b1 << 1)] is value

    @given(st.lists(logic_values, min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_roundtrip(self, values):
        p0, p1 = pack(values)
        assert unpack(p0, p1, len(values)) == values

    @given(st.lists(logic_values, min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_lane_value_matches_unpack(self, values):
        p0, p1 = pack(values)
        for k, expected in enumerate(values):
            assert lane_value(p0, p1, k) is expected

    @given(logic_values, st.integers(min_value=1, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_broadcast_fills_every_lane(self, value, lanes):
        mask = (1 << lanes) - 1
        p0, p1 = broadcast(value, mask)
        assert unpack(p0, p1, lanes) == [value] * lanes

    def test_pack_is_lsb_lane_zero(self):
        p0, p1 = pack([Logic.ONE, Logic.ZERO])
        assert (p0, p1) == (0b10, 0b01)


# -- every batched opcode vs the scalar gate table ------------------------


_HALFADDER_CACHE = []


def _halfadder():
    """The halfadder circuit, compiled once (hypothesis tests cannot use
    function-scoped fixtures)."""
    if not _HALFADDER_CACHE:
        _HALFADDER_CACHE.append(compile_ok(
            """
            TYPE halfadder = COMPONENT (IN a,b: boolean;
                                        OUT cout,s: boolean) IS
            BEGIN
                s := XOR(a,b);
                cout := AND(a,b)
            END;
            SIGNAL h: halfadder;
            """
        ))
    return _HALFADDER_CACHE[0]


def _gate_circuit(op, arity):
    ins = ", ".join(f"i{k}" for k in range(arity))
    if op == "NOT":
        expr = "NOT i0"
    else:
        expr = f"{op}({ins})"
    return compile_ok(
        f"""
        TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean) IS
        BEGIN
            y := {expr}
        END;
        SIGNAL u: t;
        """
    )


GATE_CASES = [
    ("AND", 2), ("AND", 3),
    ("OR", 2), ("OR", 3),
    ("NAND", 2), ("NAND", 3),
    ("NOR", 2), ("NOR", 3),
    ("XOR", 2), ("XOR", 3),
    ("EQUAL", 2),
    ("NOT", 1),
]


class TestOpcodeAgreement:
    @pytest.mark.parametrize("op,arity", GATE_CASES)
    def test_all_operand_combinations(self, op, arity):
        """One lane per element of {0,1,UNDEF,NOINFL}^arity: the batched
        output must equal both the scalar gate function applied to that
        lane's operands and an independent scalar dataflow run."""
        circuit = _gate_circuit(op, arity)
        combos = list(itertools.product(ALL_LOGIC, repeat=arity))
        sim = circuit.simulator(engine="batched", lanes=len(combos))
        assert sim._batched_fast
        for j in range(arity):
            sim.poke_lanes(f"i{j}", [combo[j] for combo in combos])
        sim.step()
        got = [vals[0] for vals in sim.peek_lanes("y")]
        for k, combo in enumerate(combos):
            expected = GATE_FUNCTIONS[op](list(combo))
            assert got[k] is expected, (
                f"{op}{combo}: batched lane {k} gave {got[k]}, "
                f"scalar table says {expected}"
            )
        # and the engine-level differential: scalar dataflow, per combo
        for k, combo in enumerate(combos):
            ref = circuit.simulator(engine="dataflow")
            for j in range(arity):
                ref.poke(f"i{j}", combo[j])
            ref.step()
            assert ref.peek("y")[0] is got[k], f"{op}{combo}"

    @given(st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40, deadline=None)
    def test_random_lane_mix_halfadder(self, seed):
        """Random 4-valued stimuli on the halfadder: every lane equals a
        scalar dataflow run with that lane's pokes."""
        import random as _random

        halfadder_circuit = _halfadder()
        rng = _random.Random(seed)
        lanes = rng.randint(1, 9)
        a = [rng.choice(ALL_LOGIC) for _ in range(lanes)]
        b = [rng.choice(ALL_LOGIC) for _ in range(lanes)]
        sim = halfadder_circuit.simulator(engine="batched", lanes=lanes)
        sim.poke_lanes("a", a)
        sim.poke_lanes("b", b)
        sim.step()
        s = sim.peek_lanes("s")
        cout = sim.peek_lanes("cout")
        for k in range(lanes):
            ref = halfadder_circuit.simulator(engine="dataflow")
            ref.poke("a", a[k])
            ref.poke("b", b[k])
            ref.step()
            assert [str(v) for v in ref.peek("s")] == [str(v) for v in s[k]]
            assert [str(v) for v in ref.peek("cout")] == [
                str(v) for v in cout[k]
            ]


# -- BatchStimulus --------------------------------------------------------


class TestBatchStimulus:
    def test_scalar_set_broadcasts(self, halfadder_circuit):
        stim = BatchStimulus(4)
        stim.set("a", 1)
        stim.set("b", [0, 1, 0, 1])
        sim = halfadder_circuit.simulator(engine="batched", lanes=4)
        stim.apply(sim)
        sim.step()
        assert sim.peek_lanes("s") == [
            [Logic.ONE], [Logic.ZERO], [Logic.ONE], [Logic.ZERO]
        ]

    def test_list_length_must_match(self):
        stim = BatchStimulus(4)
        with pytest.raises(ValueError):
            stim.set("a", [0, 1])

    def test_from_vectors(self, halfadder_circuit):
        stim = BatchStimulus.from_vectors(
            [{"a": 0, "b": 0}, {"a": 1, "b": 1}]
        )
        assert stim.lanes == 2
        sim = halfadder_circuit.simulator(engine="batched", lanes=2)
        stim.apply(sim)
        sim.step()
        assert sim.peek_lanes("cout") == [[Logic.ZERO], [Logic.ONE]]

    def test_sweep(self, halfadder_circuit):
        stim = BatchStimulus.sweep("a", [0, 1, 0, 1], b=1)
        assert stim.lanes == 4
        sim = halfadder_circuit.simulator(engine="batched", lanes=4)
        stim.apply(sim)
        sim.step()
        assert sim.peek_lanes("s") == [
            [Logic.ONE], [Logic.ZERO], [Logic.ONE], [Logic.ZERO]
        ]

    def test_from_json_mapping_infers_lanes(self):
        stim = BatchStimulus.from_json({"a": [0, 1, 1], "b": 1})
        assert stim.lanes == 3

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "stim.json"
        path.write_text(json.dumps(
            {"lanes": 2, "pokes": {"a": [0, 1], "b": 0}}
        ))
        stim = BatchStimulus.from_json(str(path))
        assert stim.lanes == 2

    def test_none_keeps_input_default(self, halfadder_circuit):
        sim = halfadder_circuit.simulator(engine="batched", lanes=2)
        sim.poke_lanes("a", [1, None])
        sim.poke_lanes("b", [1, 1])
        sim.step()
        # lane 1's `a` stays at the unpoked-input default (UNDEF)
        assert sim.peek_lanes("s") == [[Logic.ZERO], [Logic.UNDEF]]

    # -- validation (the PR's stimulus bugfix sweep) ----------------------

    def test_from_vectors_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one vector"):
            BatchStimulus.from_vectors([])

    def test_from_vectors_rejects_non_mapping_with_lane_index(self):
        with pytest.raises(ValueError, match="lane 1"):
            BatchStimulus.from_vectors([{"a": 1}, 7])

    def test_from_json_rejects_non_integer_lanes(self):
        for bad in ("three", 2.5, True, [4]):
            with pytest.raises(ValueError, match="'lanes' must be an integer"):
                BatchStimulus.from_json({"lanes": bad, "pokes": {"a": 1}})

    def test_from_json_mismatched_list_lengths_raise(self):
        with pytest.raises(ValueError, match="got 2 lane values for 3 lanes"):
            BatchStimulus.from_json({"a": [1, 0, 1], "b": [0, 1]})

    def test_poke_lanes_overwide_value_names_path_and_lane(self):
        circuit = compile_ok(
            """
            TYPE bo4 = ARRAY [1..4] OF boolean;
            t = COMPONENT (IN a: bo4; OUT y: bo4) IS BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(engine="batched", lanes=3)
        with pytest.raises(ValueError, match=r"poke 'u\.a' lane 1") as exc:
            sim.poke_lanes("u.a", [1, 99, 2])  # 99 needs 7 bits
        assert "does not fit" in str(exc.value)
        with pytest.raises(ValueError, match=r"poke 'u\.a' lane 2"):
            sim.poke_lanes("u.a", [1, 2, [0, 1]])  # wrong bit-list width
        with pytest.raises(TypeError, match=r"poke 'u\.a' lane 0"):
            sim.poke_lanes("u.a", [object(), 1, 2])


# -- reset_state must clear lane state (the PR's bugfix) ------------------


SEQ = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL r: REG;
BEGIN
    IF RSET THEN r.in := 0 ELSE r.in := XOR(r.out, a) END;
    y := r.out
END;
SIGNAL u: t;
"""


class TestResetStateRegression:
    def test_two_sweeps_one_simulator(self):
        """Reusing one batched simulator across two sweeps must give the
        same observations as a fresh simulator per sweep: leftover
        ``_bpokes`` entries and register planes must not leak."""
        circuit = compile_ok(SEQ)

        def sweep(sim, rset, a):
            sim.poke_lanes("RSET", rset)
            sim.poke_lanes("a", a)
            sim.step(3)
            return sim.peek_lanes("y"), [
                sim.registers(lane=k) for k in range(sim.lanes)
            ]

        reused = circuit.simulator(engine="batched", lanes=4)
        first = sweep(reused, [1, 1, 0, 0], [0, 1, 0, 1])
        reused.reset_state()
        second = sweep(reused, [0, 0, 0, 0], [1, 1, 0, None])

        fresh = circuit.simulator(engine="batched", lanes=4)
        expect_first = sweep(fresh, [1, 1, 0, 0], [0, 1, 0, 1])
        fresh2 = circuit.simulator(engine="batched", lanes=4)
        expect_second = sweep(fresh2, [0, 0, 0, 0], [1, 1, 0, None])

        assert first == expect_first
        assert second == expect_second

    def test_reset_state_clears_batched_pokes(self, halfadder_circuit):
        sim = halfadder_circuit.simulator(engine="batched", lanes=2)
        sim.poke_lanes("a", [1, 1])
        sim.poke_lanes("b", [1, 0])
        sim.step()
        sim.reset_state()
        sim.step()
        # nothing poked after reset: inputs are back to UNDEF
        assert sim.peek_lanes("s") == [[Logic.UNDEF], [Logic.UNDEF]]


# -- fallback and strict mode --------------------------------------------


CYCLIC = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p, q: boolean;
BEGIN
    p := AND(a, q);
    q := OR(a, p);
    y := q
END;
SIGNAL u: t;
"""

CONFLICT = """
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN
    IF a THEN p := 1 END;
    IF b THEN p := 0 END;
    y := p
END;
SIGNAL u: t;
"""


class TestFallbackAndStrict:
    def test_cyclic_design_falls_back_per_lane(self):
        circuit = repro.compile_text(CYCLIC, strict=False)
        sim = circuit.simulator(engine="batched", lanes=3)
        assert sim.engine == "batched"
        assert not sim._batched_fast
        assert "fallback" in sim.engine_reason
        sim.poke_lanes("a", [0, 1, None])
        sim.step()
        for k, a in enumerate([0, 1, None]):
            ref = circuit.simulator(engine="dataflow")
            if a is not None:
                ref.poke("a", a)
            ref.step()
            assert sim.peek_lanes("y")[k] == ref.peek("y")

    def test_strict_conflict_names_the_lane(self):
        circuit = repro.compile_text(CONFLICT, strict=False)
        sim = circuit.simulator(engine="batched", lanes=4, strict=True)
        sim.poke_lanes("a", [0, 1, 0, 1])
        sim.poke_lanes("b", [0, 0, 1, 1])
        with pytest.raises(SimulationError, match=r"lane 3"):
            sim.step()

    def test_lenient_conflict_records_lane(self):
        circuit = repro.compile_text(CONFLICT, strict=False)
        sim = circuit.simulator(engine="batched", lanes=4, strict=False)
        sim.poke_lanes("a", [0, 1, 0, 1])
        sim.poke_lanes("b", [0, 0, 1, 1])
        sim.step()
        assert [v.lane for v in sim.violations] == [3]
        assert "lane 3" in str(sim.violations[0])
        # non-conflicting lanes are unaffected
        assert sim.peek_lanes("y")[1] == [Logic.ONE]
        assert sim.peek_lanes("y")[2] == [Logic.ZERO]

    def test_record_firing_rejected(self, halfadder_circuit):
        with pytest.raises(ValueError, match="record_firing"):
            halfadder_circuit.simulator(engine="batched", record_firing=True)


# -- metrics + export -----------------------------------------------------


class TestBatchedMetrics:
    def test_report_has_batched_section(self, halfadder_circuit):
        registry = _spans.REGISTRY
        registry.reset()
        sim = halfadder_circuit.simulator(
            engine="batched", lanes=8, metrics=True
        )
        sim.poke_lanes("a", [0, 1] * 4)
        sim.poke("b", 1)
        sim.step(5)
        report = metrics_report(halfadder_circuit, sim)
        validate_report(report)
        batched = report["sim"]["batched"]
        assert batched == {
            "lanes": 8, "lane_cycles": 40, "fast_path": True
        }
        assert "8 lanes" in sim.metrics.render()
        registry.reset()

    def test_scalar_report_has_no_batched_section(self, halfadder_circuit):
        sim = halfadder_circuit.simulator(metrics=True)
        sim.step()
        report = metrics_report(halfadder_circuit, sim)
        validate_report(report)
        assert "batched" not in report["sim"]


# -- CLI ------------------------------------------------------------------


class TestCliBatch:
    def test_sim_batch_file(self, tmp_path, capsys):
        stim = tmp_path / "stim.json"
        stim.write_text(json.dumps({
            "lanes": 4,
            "pokes": {"a": [0, 5, 10, 15], "b": [15, 10, 5, 0], "cin": 0},
        }))
        code, out, _ = run_cli(
            ["sim", "--builtin", "adders", "--batch", str(stim),
             "--cycles", "1"],
            capsys,
        )
        assert code == 0
        assert "batched run: 4 lanes x 1 cycles (bit-parallel)" in out
        # every lane sums to 15
        assert out.count(" 15") >= 4

    def test_sim_lanes_flag(self, capsys):
        code, out, _ = run_cli(
            ["sim", "--builtin", "adders", "--lanes", "2",
             "--poke", "a=1", "--poke", "b=2", "--poke", "cin=0"],
            capsys,
        )
        assert code == 0
        assert "batched run: 2 lanes" in out

    def test_lane_count_conflict_exits_2(self, tmp_path, capsys):
        stim = tmp_path / "stim.json"
        stim.write_text(json.dumps({"a": [0, 1]}))
        code, _, err = run_cli(
            ["sim", "--builtin", "adders", "--batch", str(stim),
             "--lanes", "8"],
            capsys,
        )
        assert code == 2
        assert "conflicts" in err

    def test_overwide_stimulus_exits_2_naming_path_and_lane(
        self, tmp_path, capsys
    ):
        """An over-wide lane value must exit 2 with the net path and
        the offending lane index, not silently truncate planes."""
        stim = tmp_path / "stim.json"
        stim.write_text(json.dumps(
            {"lanes": 3, "pokes": {"a": [1, 99, 2], "b": 0, "cin": 0}}
        ))
        code, _, err = run_cli(
            ["sim", "--builtin", "adders", "--batch", str(stim),
             "--cycles", "1"],
            capsys,
        )
        assert code == 2
        assert "poke 'a' lane 1" in err
        assert "does not fit" in err

    def test_bad_lanes_value_exits_2(self, tmp_path, capsys):
        stim = tmp_path / "stim.json"
        stim.write_text(json.dumps({"lanes": "three", "pokes": {"a": 1}}))
        code, _, err = run_cli(
            ["sim", "--builtin", "adders", "--batch", str(stim)],
            capsys,
        )
        assert code == 2
        assert "'lanes' must be an integer" in err

    def test_mismatched_vector_lengths_exit_2(self, tmp_path, capsys):
        stim = tmp_path / "stim.json"
        stim.write_text(json.dumps({"a": [0, 1, 1], "b": [1, 0]}))
        code, _, err = run_cli(
            ["sim", "--builtin", "adders", "--batch", str(stim)],
            capsys,
        )
        assert code == 2
        assert "got 2 lane values for 3 lanes" in err
