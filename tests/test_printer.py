"""Pretty-printer round-trip tests: parse -> print -> parse yields a
structurally equal AST, and the reprinted program elaborates to the same
netlist shape, for every bundled program."""

import pytest

import repro
from repro.lang import ast, parse
from repro.lang.printer import print_expr, print_program
from repro.stdlib import extras, programs


def ast_equal(a, b) -> bool:
    """Structural AST equality ignoring lexical trivia (spans, comments)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Node):
        for field in vars(a):
            if field in ("span", "comments"):
                continue
            if not ast_equal(getattr(a, field), getattr(b, field)):
                return False
        return True
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(ast_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, ast.Mode):
        return a is b
    return a == b


ALL = {**programs.ALL_PROGRAMS, **extras.EXTRA_PROGRAMS}


@pytest.mark.parametrize("name", sorted(ALL))
def test_roundtrip_ast(name):
    original = parse(ALL[name])
    printed = print_program(original)
    reparsed = parse(printed)
    assert ast_equal(original, reparsed), printed


@pytest.mark.parametrize("name", sorted(ALL))
def test_roundtrip_netlist_shape(name):
    original = repro.compile_text(ALL[name])
    printed = print_program(parse(ALL[name]))
    reprinted = repro.compile_text(printed)
    assert original.stats() == reprinted.stats()


class TestExpressionPrinting:
    @pytest.mark.parametrize("text", [
        "a[1].b",
        "ram[NUM(addr)]",
        "x[2..7]",
        "AND(a, OR(b, c))",
        "NOT g",
        "BIN(10, 5)",
        "(a, b, (c, d))",
        "*",
        "s.first..last",
    ])
    def test_expression_roundtrip(self, text):
        from repro.lang import parse_expression

        e = parse_expression(text)
        e2 = parse_expression(print_expr(e))
        assert ast_equal(e, e2)

    def test_number_literals(self):
        assert print_expr(ast.NumberLit(42)) == "42"

    def test_binary_parenthesised(self):
        from repro.lang import Parser

        e = Parser("2*i+1").parse_const_expression()
        assert print_expr(e) == "((2 * i) + 1)"
