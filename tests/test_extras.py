"""The extension circuits of experiment E11: systolic stack, AM2901-style
ALU slice, dictionary machine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.stdlib import extras

_CACHE = {}


def circuit(name):
    if name not in _CACHE:
        _CACHE[name] = repro.compile_text(extras.EXTRA_PROGRAMS[name])
    return _CACHE[name]


class StackDriver:
    def __init__(self):
        self.sim = circuit("stack").simulator()
        s = self.sim
        s.poke("RSET", 1); s.poke("push", 0); s.poke("pop", 0); s.poke("din", 0)
        s.step()
        s.poke("RSET", 0)

    def push(self, v):
        self.sim.poke("push", 1); self.sim.poke("pop", 0)
        self.sim.poke("din", v); self.sim.step()
        self.sim.poke("push", 0)

    def pop(self):
        top = self.top()
        self.sim.poke("push", 0); self.sim.poke("pop", 1); self.sim.step()
        self.sim.poke("pop", 0)
        return top

    def idle(self):
        self.sim.poke("push", 0); self.sim.poke("pop", 0); self.sim.step()

    def top(self):
        self.sim.poke("push", 0); self.sim.poke("pop", 0)
        self.sim.evaluate()
        return self.sim.peek_int("top")

    def empty(self):
        self.sim.poke("push", 0); self.sim.poke("pop", 0)
        self.sim.evaluate()
        return str(self.sim.peek_bit("empty")) == "1"


class TestSystolicStack:
    def test_lifo_discipline(self):
        stk = StackDriver()
        for v in (3, 7, 12):
            stk.push(v)
        assert stk.pop() == 12
        assert stk.pop() == 7
        assert stk.pop() == 3
        assert stk.empty()

    def test_interleaved_push_pop(self):
        stk = StackDriver()
        stk.push(1)
        stk.push(2)
        assert stk.pop() == 2
        stk.push(5)
        assert stk.pop() == 5
        assert stk.pop() == 1
        assert stk.empty()

    def test_empty_flag_transitions(self):
        stk = StackDriver()
        assert stk.empty()
        stk.push(9)
        assert not stk.empty()
        stk.pop()
        assert stk.empty()

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=20))
    @settings(max_examples=10, deadline=None)
    def test_random_ops_match_list_model(self, ops):
        stk = StackDriver()
        model = []
        value = 1
        for op in ops:
            if op == "push" and len(model) < 8:
                stk.push(value % 16)
                model.append(value % 16)
                value += 1
            elif op == "pop" and model:
                assert stk.pop() == model.pop()
        if model:
            assert stk.top() == model[-1]
        assert stk.empty() == (not model)


class Am2901Driver:
    SRC = {"AQ": 0, "AB": 1, "ZQ": 2, "ZB": 3, "ZA": 4, "DA": 5, "DQ": 6, "DZ": 7}
    FUNC = {"ADD": 0, "SUBR": 1, "SUBS": 2, "OR": 3, "AND": 4,
            "NOTRS": 5, "EXOR": 6, "EXNOR": 7}
    DEST = {"NONE": 0, "Q": 1, "RAM": 2, "BOTH": 3}

    def __init__(self):
        self.sim = circuit("am2901").simulator()

    def op(self, src, func, dest, d=0, a=0, b=0):
        s = self.sim
        s.poke("d", d); s.poke("aaddr", a); s.poke("baddr", b)
        s.poke("src", self.SRC[src]); s.poke("func", self.FUNC[func])
        s.poke("dest", self.DEST[dest])
        s.step()
        return (s.peek_int("y"), str(s.peek_bit("cout")), str(s.peek_bit("zero")))

    def load(self, reg, value):
        self.op("DZ", "ADD", "RAM", d=value, b=reg)


class TestAm2901:
    def test_load_and_read_registers(self):
        alu = Am2901Driver()
        alu.load(2, 11)
        alu.load(9, 4)
        y, _, _ = alu.op("AB", "OR", "NONE", a=2, b=9)
        assert y == 11 | 4

    @pytest.mark.parametrize("func,expect", [
        ("ADD", (9 + 4) & 15),
        ("SUBR", (4 - 9) & 15),
        ("SUBS", (9 - 4) & 15),
        ("OR", 9 | 4),
        ("AND", 9 & 4),
        ("NOTRS", (~9 & 4) & 15),
        ("EXOR", 9 ^ 4),
        ("EXNOR", (~(9 ^ 4)) & 15),
    ])
    def test_alu_functions(self, func, expect):
        alu = Am2901Driver()
        alu.load(1, 9)
        alu.load(2, 4)
        y, _, _ = alu.op("AB", func, "NONE", a=1, b=2)
        assert y == expect

    def test_carry_out(self):
        alu = Am2901Driver()
        alu.load(1, 15)
        alu.load(2, 1)
        y, cout, zero = alu.op("AB", "ADD", "NONE", a=1, b=2)
        assert (y, cout, zero) == (0, "1", "1")

    def test_q_register_path(self):
        alu = Am2901Driver()
        alu.op("DZ", "ADD", "Q", d=6)       # Q := 6
        y, _, _ = alu.op("DQ", "ADD", "NONE", d=3)  # Y = D + Q
        assert y == 9

    def test_zero_source(self):
        alu = Am2901Driver()
        alu.load(3, 12)
        y, _, _ = alu.op("ZA", "ADD", "NONE", a=3)
        assert y == 12

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=10, deadline=None)
    def test_add_random(self, x, y_in):
        alu = Am2901Driver()
        alu.load(0, x)
        alu.load(1, y_in)
        y, cout, _ = alu.op("AB", "ADD", "NONE", a=0, b=1)
        assert y + (16 if cout == "1" else 0) == x + y_in


class TestDictionary:
    LATENCY = 5

    def make(self):
        sim = circuit("dictionary").simulator()
        sim.poke("RSET", 1)
        for k in ("load", "del", "slot", "key", "query"):
            sim.poke(k, 0)
        sim.step()
        sim.poke("RSET", 0)
        return sim

    def load(self, sim, slot, key):
        sim.poke("load", 1); sim.poke("slot", slot); sim.poke("key", key)
        sim.step()
        sim.poke("load", 0)

    def member(self, sim, key):
        sim.poke("query", key)
        sim.step(self.LATENCY)
        return str(sim.peek_bit("member")) == "1"

    def test_member_queries(self):
        sim = self.make()
        for slot, key in [(0, 13), (3, 42), (7, 7)]:
            self.load(sim, slot, key)
        assert self.member(sim, 42)
        assert self.member(sim, 13)
        assert not self.member(sim, 9)

    def test_delete(self):
        sim = self.make()
        self.load(sim, 2, 30)
        assert self.member(sim, 30)
        sim.poke("del", 1); sim.poke("slot", 2); sim.step()
        sim.poke("del", 0)
        assert not self.member(sim, 30)

    def test_overwrite_slot(self):
        sim = self.make()
        self.load(sim, 1, 10)
        self.load(sim, 1, 20)
        assert not self.member(sim, 10)
        assert self.member(sim, 20)

    def test_pipelined_throughput(self):
        """One query per cycle: answers emerge latency cycles later in
        order."""
        sim = self.make()
        self.load(sim, 0, 5)
        queries = [5, 6, 5, 7, 5]
        answers = []
        # Fill the pipe, then read one answer per cycle.
        total = len(queries) + self.LATENCY - 1
        for t in range(total):
            sim.poke("query", queries[t] if t < len(queries) else 0)
            sim.step()
            answers.append(str(sim.peek_bit("member")))
        got = answers[self.LATENCY - 1 : self.LATENCY - 1 + len(queries)]
        assert got == ["1", "0", "1", "0", "1"]
