"""Differential fuzzing: random Zeus programs vs. a Python model.

A generator builds random combinational DAGs (and register pipelines),
renders them as Zeus text, and checks the simulator against direct
evaluation of the same DAG in Python -- over every input vector for
small input counts.  This is the broadest single safety net in the
suite: it exercises parser, elaborator, checker and simulator together.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro

OPS = ["AND", "OR", "NAND", "NOR", "XOR"]


def build_dag(rng, n_inputs, n_nodes):
    """Nodes are (op, operand indices); operand < current index refers to
    a previous node, operand < n_inputs to an input."""
    nodes = []
    for i in range(n_nodes):
        op = rng.choice(OPS + ["NOT"])
        pool = n_inputs + i
        if op == "NOT":
            args = [rng.randrange(pool)]
        else:
            args = [rng.randrange(pool) for _ in range(rng.choice([2, 2, 3]))]
        nodes.append((op, args))
    return nodes


def render_zeus(n_inputs, nodes):
    ins = ", ".join(f"i{k}" for k in range(n_inputs))
    lines = []
    for i, (op, args) in enumerate(nodes):
        def name(j):
            return f"i{j}" if j < n_inputs else f"s{j - n_inputs}"

        if op == "NOT":
            expr = f"NOT {name(args[0])}"
        else:
            expr = f"{op}({', '.join(name(a) for a in args)})"
        lines.append(f"    s{i} := {expr};")
    body = "\n".join(lines)
    sigs = ", ".join(f"s{i}" for i in range(len(nodes)))
    return f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean) IS
SIGNAL {sigs}: boolean;
BEGIN
{body}
    y := s{len(nodes) - 1}
END;
SIGNAL u: t;
"""


def eval_dag(n_inputs, nodes, inputs):
    values = list(inputs)
    for op, args in nodes:
        vals = [values[a] for a in args]
        if op == "NOT":
            out = 1 - vals[0]
        elif op == "AND":
            out = int(all(vals))
        elif op == "OR":
            out = int(any(vals))
        elif op == "NAND":
            out = 1 - int(all(vals))
        elif op == "NOR":
            out = 1 - int(any(vals))
        else:  # XOR
            out = sum(vals) % 2
        values.append(out)
    return values[-1]


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_combinational_dags(seed):
    rng = random.Random(seed)
    n_inputs = rng.randint(1, 4)
    n_nodes = rng.randint(1, 10)
    nodes = build_dag(rng, n_inputs, n_nodes)
    circuit = repro.compile_text(render_zeus(n_inputs, nodes))
    sim = circuit.simulator()
    for vector in range(1 << n_inputs):
        bits = [(vector >> k) & 1 for k in range(n_inputs)]
        for k, bit in enumerate(bits):
            sim.poke(f"i{k}", bit)
        sim.step()
        assert str(sim.peek_bit("y")) == str(eval_dag(n_inputs, nodes, bits)), (
            seed,
            bits,
        )


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_statement_order_shuffle_is_irrelevant(seed):
    """Shuffle the statement list of a random DAG: same results
    (section 4's order-irrelevance, fuzzed)."""
    rng = random.Random(seed)
    n_inputs = rng.randint(1, 3)
    nodes = build_dag(rng, n_inputs, rng.randint(2, 8))
    text = render_zeus(n_inputs, nodes)
    head, _, rest = text.partition("BEGIN\n")
    body, _, tail = rest.partition("    y := ")
    stmts = [l for l in body.strip().split("\n") if l.strip()]
    rng.shuffle(stmts)
    shuffled = head + "BEGIN\n" + "\n".join(stmts) + "\n    y := " + tail
    a = repro.compile_text(text).simulator()
    b = repro.compile_text(shuffled).simulator()
    for vector in range(1 << n_inputs):
        bits = [(vector >> k) & 1 for k in range(n_inputs)]
        for k, bit in enumerate(bits):
            a.poke(f"i{k}", bit)
            b.poke(f"i{k}", bit)
        a.step()
        b.step()
        assert str(a.peek_bit("y")) == str(b.peek_bit("y"))


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_random_register_pipelines(seed):
    """A random-depth register pipeline applying a random DAG per stage:
    hardware output after d+1 cycles equals the model applied d times."""
    rng = random.Random(seed)
    depth = rng.randint(1, 4)
    text_regs = "".join(f"SIGNAL r{i}: REG;\n" for i in range(depth))
    wiring = ["r0.in := din;"]
    for i in range(1, depth):
        wiring.append(f"r{i}.in := NOT r{i - 1}.out;")
    wiring.append(f"q := r{depth - 1}.out")
    text = f"""
TYPE t = COMPONENT (IN din: boolean; OUT q: boolean) IS
{text_regs}
BEGIN
    {' '.join(wiring)}
END;
SIGNAL u: t;
"""
    sim = repro.compile_text(text).simulator()
    stream = [rng.randint(0, 1) for _ in range(depth + 6)]
    seen = []
    for bit in stream:
        sim.poke("din", bit)
        sim.step()
        seen.append(str(sim.peek_bit("q")))
    # After the pipe fills, q(t) = din(t - depth) inverted (depth-1) times.
    inversions = depth - 1
    for t in range(depth, len(stream)):
        expected = stream[t - depth] ^ (inversions % 2)
        assert seen[t] == str(expected), (seed, t)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_lenient_mode_never_crashes_on_conflicts(seed):
    """Random programs with deliberately conflicting conditional drivers:
    lenient simulation must complete and record violations instead of
    crashing."""
    rng = random.Random(seed)
    n_guards = rng.randint(2, 4)
    ins = ", ".join(f"g{k}" for k in range(n_guards))
    stmts = "\n".join(
        f"    IF g{k} THEN z := {k % 2} END;" for k in range(n_guards)
    )
    text = f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
{stmts}
    y := g0
END;
SIGNAL u: t;
"""
    sim = repro.compile_text(text).simulator(strict=False)
    for vector in range(1 << n_guards):
        for k in range(n_guards):
            sim.poke(f"g{k}", (vector >> k) & 1)
        sim.step()
    active = [k for k in range(n_guards)]
    # With all guards on there must be recorded violations.
    assert sim.violations
