"""Differential fuzzing: random Zeus programs vs. a Python model and
across all four engines.

The generator lives in :mod:`repro.analysis.fuzzgen` (shared with the
nightly long-budget runner, ``scripts/fuzz_nightly.py``).  The fast
slice here checks

* random combinational DAGs against direct Python evaluation of the
  same DAG (the historical safety net), and
* the extended generator's full repertoire -- multiplex nets with
  guarded (and deliberately conflictable) drivers, REG pipelines with
  guarded loads, FOR/WHEN meta-programmed replication -- differentially
  across dataflow (the oracle), levelized and batched, lane by lane,
  plus the fifth leg: the design round-tripped through the structural
  Verilog emitter and reader (:mod:`repro.analysis.roundtrip`)
  co-simulated against the original.

Long-budget cases are marked ``slow`` and skipped unless the
``ZEUS_FUZZ_LONG`` environment variable is set (the nightly CI job sets
it; tier-1 stays fast).

``build_dag``/``render_zeus``/``eval_dag`` are re-exported here because
``tests/test_engines.py`` imports them from this module.
"""

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.fuzzgen import (
    OPS,
    build_dag,
    default_failure_predicate,
    differential_check,
    eval_dag,
    generate_program,
    render_zeus,
    shrink,
)

__all__ = ["OPS", "build_dag", "render_zeus", "eval_dag"]

long_fuzz = pytest.mark.skipif(
    not os.environ.get("ZEUS_FUZZ_LONG"),
    reason="long-budget fuzz (set ZEUS_FUZZ_LONG=1; the nightly job does)",
)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_combinational_dags(seed):
    rng = random.Random(seed)
    n_inputs = rng.randint(1, 4)
    n_nodes = rng.randint(1, 10)
    nodes = build_dag(rng, n_inputs, n_nodes)
    circuit = repro.compile_text(render_zeus(n_inputs, nodes))
    sim = circuit.simulator()
    for vector in range(1 << n_inputs):
        bits = [(vector >> k) & 1 for k in range(n_inputs)]
        for k, bit in enumerate(bits):
            sim.poke(f"i{k}", bit)
        sim.step()
        assert str(sim.peek_bit("y")) == str(eval_dag(n_inputs, nodes, bits)), (
            seed,
            bits,
        )


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_statement_order_shuffle_is_irrelevant(seed):
    """Shuffle the statement list of a random DAG: same results
    (section 4's order-irrelevance, fuzzed)."""
    rng = random.Random(seed)
    n_inputs = rng.randint(1, 3)
    nodes = build_dag(rng, n_inputs, rng.randint(2, 8))
    text = render_zeus(n_inputs, nodes)
    head, _, rest = text.partition("BEGIN\n")
    body, _, tail = rest.partition("    y := ")
    stmts = [l for l in body.strip().split("\n") if l.strip()]
    rng.shuffle(stmts)
    shuffled = head + "BEGIN\n" + "\n".join(stmts) + "\n    y := " + tail
    a = repro.compile_text(text).simulator()
    b = repro.compile_text(shuffled).simulator()
    for vector in range(1 << n_inputs):
        bits = [(vector >> k) & 1 for k in range(n_inputs)]
        for k, bit in enumerate(bits):
            a.poke(f"i{k}", bit)
            b.poke(f"i{k}", bit)
        a.step()
        b.step()
        assert str(a.peek_bit("y")) == str(b.peek_bit("y"))


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_random_register_pipelines(seed):
    """A random-depth register pipeline applying a random DAG per stage:
    hardware output after d+1 cycles equals the model applied d times."""
    rng = random.Random(seed)
    depth = rng.randint(1, 4)
    text_regs = "".join(f"SIGNAL r{i}: REG;\n" for i in range(depth))
    wiring = ["r0.in := din;"]
    for i in range(1, depth):
        wiring.append(f"r{i}.in := NOT r{i - 1}.out;")
    wiring.append(f"q := r{depth - 1}.out")
    text = f"""
TYPE t = COMPONENT (IN din: boolean; OUT q: boolean) IS
{text_regs}
BEGIN
    {' '.join(wiring)}
END;
SIGNAL u: t;
"""
    sim = repro.compile_text(text).simulator()
    stream = [rng.randint(0, 1) for _ in range(depth + 6)]
    seen = []
    for bit in stream:
        sim.poke("din", bit)
        sim.step()
        seen.append(str(sim.peek_bit("q")))
    # After the pipe fills, q(t) = din(t - depth) inverted (depth-1) times.
    inversions = depth - 1
    for t in range(depth, len(stream)):
        expected = stream[t - depth] ^ (inversions % 2)
        assert seen[t] == str(expected), (seed, t)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_lenient_mode_never_crashes_on_conflicts(seed):
    """Random programs with deliberately conflicting conditional drivers:
    lenient simulation must complete and record violations instead of
    crashing."""
    rng = random.Random(seed)
    n_guards = rng.randint(2, 4)
    ins = ", ".join(f"g{k}" for k in range(n_guards))
    stmts = "\n".join(
        f"    IF g{k} THEN z := {k % 2} END;" for k in range(n_guards)
    )
    text = f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
{stmts}
    y := g0
END;
SIGNAL u: t;
"""
    sim = repro.compile_text(text).simulator(strict=False)
    for vector in range(1 << n_guards):
        for k in range(n_guards):
            sim.poke(f"g{k}", (vector >> k) & 1)
        sim.step()
    # With all guards on there must be recorded violations.
    assert sim.violations


# -- the extended generator, four engines, lane by lane -------------------


@pytest.mark.fuzz
class TestExtendedDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_full_repertoire(self, seed):
        """Mux + REG + meta-programmed programs: dataflow (oracle) vs
        levelized vs batched vs the Verilog round-trip, per-cycle
        outputs, final registers and per-lane violations."""
        prog = generate_program(seed)
        res = differential_check(
            prog.text, cycles=3, n_vectors=4, seed=seed
        )
        assert res.ok, f"seed {seed}: {res.detail}\n{prog.text}"

    @pytest.mark.parametrize("shape", ["mux", "regs", "meta"])
    def test_each_shape_alone(self, shape):
        """Each extension in isolation still agrees across engines."""
        flags = {
            "allow_mux": shape == "mux",
            "allow_regs": shape == "regs",
            "allow_meta": shape == "meta",
        }
        hit = 0
        for seed in range(30):
            prog = generate_program(seed, **flags)
            marker = {
                "mux": "multiplex",
                "regs": ": REG",
                "meta": "chain",
            }[shape]
            if marker not in prog.text:
                continue
            hit += 1
            res = differential_check(prog.text, cycles=3, n_vectors=3,
                                     seed=seed)
            assert res.ok, f"{shape} seed {seed}: {res.detail}\n{prog.text}"
        assert hit >= 5, f"generator barely exercises {shape}"

    def test_conflicting_drivers_violations_agree(self):
        """Find a generated program whose stimuli actually conflict and
        make sure the differential check (which compares violation logs)
        still passes on it."""
        for seed in range(200):
            prog = generate_program(seed, allow_regs=False, allow_meta=False)
            if "multiplex" not in prog.text:
                continue
            circuit = repro.compile_text(prog.text, name="f", strict=False)
            sim = circuit.simulator(engine="dataflow", strict=False)
            for name in prog.inputs():
                sim.poke(name, 1)
            sim.step()
            if not sim.violations:
                continue
            res = differential_check(
                prog.text, cycles=2,
                vectors=[{name: 1 for name in prog.inputs()}],
            )
            assert res.ok, res.detail
            return
        pytest.fail("no conflicting program found in 200 seeds")

    def test_shrinker_produces_minimal_failing_program(self):
        """Drive the shrinker with a synthetic predicate ("contains a
        NOT statement") and check it reaches a 1-statement program that
        still compiles and satisfies the predicate."""

        def failing(prog):
            try:
                repro.compile_text(prog.text, name="f", strict=False)
            except Exception:
                return False
            return any("NOT" in s for s in prog.stmts)

        for seed in range(50):
            prog = generate_program(seed)
            if not failing(prog):
                continue
            small = shrink(prog, failing)
            assert failing(small)
            assert len(small.stmts) == 1
            return
        pytest.fail("no seed produced a NOT statement")

    def test_default_predicate_rejects_uncompilable(self):
        prog = generate_program(0)
        prog.stmts.append("this is not zeus")
        assert not default_failure_predicate()(prog)


@long_fuzz
@pytest.mark.slow
@pytest.mark.fuzz
class TestLongBudget:
    """The nightly budget, in-process (ZEUS_FUZZ_LONG=1)."""

    @pytest.mark.parametrize("block", range(4))
    def test_extended_differential_block(self, block):
        for seed in range(block * 250, (block + 1) * 250):
            prog = generate_program(seed)
            res = differential_check(
                prog.text, cycles=4, n_vectors=8, seed=seed
            )
            assert res.ok, f"seed {seed}: {res.detail}\n{prog.text}"
