"""Public API surface and remaining utility paths."""

import pytest

import repro
from repro.lang import ast, parse
from repro.stdlib import programs

from zeus_test_utils import compile_ok


class TestProgramHelpers:
    def test_decl_partitions(self):
        prog = parse(
            "CONST k = 1;\n"
            "TYPE t = ARRAY [1..k] OF boolean;\n"
            "SIGNAL s: t;\n"
        )
        assert len(prog.constants()) == 1
        assert len(prog.types()) == 1
        assert len(prog.signals()) == 1


class TestCircuitApi:
    def test_circuit_properties(self):
        circuit = compile_ok(programs.MUX4)
        assert circuit.name == "m"
        assert circuit.netlist.name == "m"
        assert "nets" in circuit.stats()

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_testbench_factory_from_text(self):
        tb = repro.make_testbench(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            SIGNAL u: t;
            """
        )
        tb.drive(a=0).clock().expect(y=1)

    def test_compile_text_lenient_returns_diags(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL p: boolean;
            BEGIN p := 1; p := 0; y := a; * := p END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        assert circuit.diagnostics.has_errors()
        # Lenient circuits still simulate.
        sim = circuit.simulator(strict=False)
        sim.poke("a", 1)
        sim.step()


class TestSimulatorApiEdges:
    def test_peek_bit_rejects_vectors(self):
        circuit = compile_ok(programs.ripple_carry(4), top="adder")
        sim = circuit.simulator()
        with pytest.raises(KeyError, match="4 bits wide"):
            sim.peek_bit("s")

    def test_event_count_after_evaluate(self):
        circuit = compile_ok(programs.MUX4)
        sim = circuit.simulator()
        sim.poke("d", 5); sim.poke("a", [0, 0]); sim.poke("g", 0)
        sim.evaluate()
        assert sim.event_count == len(
            {circuit.netlist.find(n).id for n in circuit.netlist.nets}
        )

    def test_multiple_traces(self):
        from repro.core.trace import Trace

        circuit = compile_ok(programs.MUX4)
        sim = circuit.simulator()
        t1, t2 = Trace(["y"]), Trace(["g"])
        sim.attach_trace(t1)
        sim.attach_trace(t2)
        sim.poke("d", 1); sim.poke("a", [0, 0]); sim.poke("g", 0)
        sim.step(3)
        assert t1.cycles == t2.cycles == 3

    def test_violations_accumulate_in_lenient_mode(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c1, c2: boolean; OUT y: boolean;
                                z: multiplex) IS
            BEGIN
                IF c1 THEN z := 1 END;
                IF c2 THEN z := 0 END;
                y := c1
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(strict=False)
        sim.poke("c1", 1); sim.poke("c2", 1)
        sim.step(3)
        assert len(sim.violations) == 3
        assert "cycle 1" in str(sim.violations[1])


class TestLayoutDirections:
    BASE = """
    TYPE cell = COMPONENT (IN a: boolean; OUT y: boolean) IS
    BEGIN y := a END;
    t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL c: ARRAY [1..3] OF cell;
    {layout}
    BEGIN
        c[1].a := a;
        FOR i := 2 TO 3 DO c[i].a := c[i-1].y END;
        y := c[3].y
    END;
    SIGNAL u: t;
    """

    def plan(self, layout):
        return repro.compile_text(self.BASE.replace("{layout}", layout)).layout()

    def test_bottomtotop(self):
        plan = self.plan("{ ORDER bottomtotop c[1]; c[2]; c[3] END }")
        ys = {name: r.y for name, r in plan.iter_cells()}
        assert ys["u.c[1]"] > ys["u.c[3]"]

    def test_downto_layout_for(self):
        plan = self.plan(
            "{ ORDER lefttoright FOR i := 3 DOWNTO 1 DO c[i] END END }"
        )
        xs = {name: r.x for name, r in plan.iter_cells()}
        assert xs["u.c[3]"] == 0 and xs["u.c[1]"] == 2

    def test_layout_with_statement(self):
        text = """
        TYPE pair = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL one, two: COMPONENT (IN p: boolean; OUT q: boolean) IS
        BEGIN q := p END;
        BEGIN one(a, two.p); two(*, y) END;
        t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL g: pair;
        { WITH g DO ORDER lefttoright END END }
        BEGIN g(a, y) END;
        SIGNAL u: t;
        """
        plan = repro.compile_text(text).layout()
        assert plan.leaf_count() >= 2

    def test_bottomrighttotopleft_diagonal(self):
        plan = self.plan(
            "{ ORDER bottomrighttotopleft c[1]; c[2]; c[3] END }"
        )
        assert plan.leaf_count() == 3
