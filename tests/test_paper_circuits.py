"""Functional tests of the remaining section-10/4.2 circuits:
trees, H-tree, mux4, RAM, routing network, section-8 component."""

import pytest

import repro
from repro.core.values import Logic
from repro.lang import SimulationError
from repro.stdlib import programs


class TestTrees:
    @pytest.mark.parametrize("n", [4, 8, 16])
    @pytest.mark.parametrize("top", ["a", "b"])
    def test_broadcast(self, n, top):
        circuit = repro.compile_text(programs.trees(n), top=top)
        sim = circuit.simulator()
        for v in (0, 1, 0):
            sim.poke("in", v)
            sim.step()
            assert [str(x) for x in sim.peek("leaf")] == [str(v)] * n

    def test_iterative_equals_recursive(self):
        """The paper presents tree and rtree as equivalent definitions."""
        for n in (4, 8):
            ca = repro.compile_text(programs.trees(n), top="a")
            cb = repro.compile_text(programs.trees(n), top="b")
            na = [i for i in ca.design.instances if i.type.name == "q"]
            nb = [i for i in cb.design.instances if i.type.name == "q"]
            assert len(na) == len(nb) == n - 1

    def test_undef_propagates_everywhere(self):
        circuit = repro.compile_text(programs.trees(4), top="a")
        sim = circuit.simulator()
        sim.step()  # 'in' never poked
        assert all(str(x) == "UNDEF" for x in sim.peek("leaf"))


class TestHtree:
    @pytest.mark.parametrize("n", [1, 4, 16])
    def test_elaborates_n_leaves(self, n):
        circuit = repro.compile_text(programs.htree(n))
        leaves = [i for i in circuit.design.instances if i.type.name == "leaftype"]
        assert len(leaves) == n

    def test_undriven_bus_is_noinfl(self):
        circuit = repro.compile_text(programs.htree(16))
        sim = circuit.simulator()
        sim.poke("in", 0)
        sim.step()
        assert sim.peek("out")[0] is Logic.NOINFL

    def test_single_leaf_drives_bus(self):
        circuit = repro.compile_text(programs.htree(1))
        sim = circuit.simulator()
        sim.poke("in", 1); sim.step()
        assert sim.peek("out")[0] is Logic.ONE
        sim.poke("in", 0); sim.step()
        assert sim.peek("out")[0] is Logic.NOINFL

    def test_simultaneous_drivers_burn(self):
        """All leaves selected at once is exactly the rule violation the
        runtime check exists for."""
        circuit = repro.compile_text(programs.htree(4))
        sim = circuit.simulator()
        sim.poke("in", 1)
        with pytest.raises(SimulationError, match="burn"):
            sim.step()

    def test_aliasing_collapses_bus(self):
        circuit = repro.compile_text(programs.htree(16))
        # One shared multiplex line: the out pins of all subtrees and the
        # top 'out' are one alias class.
        nl = circuit.netlist
        out = nl.port("out").nets[0]
        assert len(nl.alias_class(out)) >= 16


class TestMux4:
    def test_truth_table(self):
        circuit = repro.compile_text(programs.MUX4)
        sim = circuit.simulator()
        d = 0b1010  # d[1]=0, d[2]=1, d[3]=0, d[4]=1
        for sel in range(4):
            # bit2[i] = ((0,0),(0,1),(1,0),(1,1)); a is 2 bits, a[1] is
            # element 1.  EQUAL(a, bit2[i]) selects d[i].
            a1, a2 = (sel >> 1) & 1, sel & 1
            sim.poke("a", [a1, a2])
            sim.poke("d", d)
            sim.poke("g", 0)
            sim.step()
            want = (d >> sel) & 1
            assert str(sim.peek_bit("y")) == str(want), sel

    def test_g_gates_output(self):
        circuit = repro.compile_text(programs.MUX4)
        sim = circuit.simulator()
        sim.poke("a", [0, 0]); sim.poke("d", 0b1111); sim.poke("g", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "0"  # AND(NOT g, h) masks


class TestMemory:
    def test_write_read_roundtrip(self):
        circuit = repro.compile_text(programs.memory(16, 8, 4))
        sim = circuit.simulator()
        data = {3: 0x5A, 7: 0xFF, 0: 0x01, 15: 0x80}
        for addr, value in data.items():
            sim.poke("we", 1); sim.poke("addr", addr); sim.poke("data", value)
            sim.step()
        sim.poke("we", 0)
        for addr, value in data.items():
            sim.poke("addr", addr)
            sim.step()
            assert sim.peek_int("q") == value

    def test_unwritten_word_reads_undef(self):
        circuit = repro.compile_text(programs.memory(8, 4, 3))
        sim = circuit.simulator()
        sim.poke("we", 0); sim.poke("addr", 5)
        sim.step()
        assert sim.peek_int("q") is None

    def test_write_does_not_disturb_neighbours(self):
        circuit = repro.compile_text(programs.memory(8, 4, 3))
        sim = circuit.simulator()
        for addr in range(8):
            sim.poke("we", 1); sim.poke("addr", addr); sim.poke("data", addr)
            sim.step()
        sim.poke("we", 0)
        for addr in range(8):
            sim.poke("addr", addr); sim.step()
            assert sim.peek_int("q") == addr

    def test_undefined_address_reads_undef(self):
        circuit = repro.compile_text(programs.memory(8, 4, 3))
        sim = circuit.simulator()
        sim.poke("we", 1); sim.poke("addr", 1); sim.poke("data", 9); sim.step()
        sim.poke("we", 0)
        sim.unpoke("addr")
        sim.step()
        assert sim.peek_int("q") is None


class TestRoutingNetwork:
    def butterfly_permutation(self, n):
        """The recursive even/odd split: input 2i -> top i, 2i+1 -> bottom."""
        def perm(n, inputs):
            if n == 2:
                return inputs
            top = perm(n // 2, [inputs[2 * i] for i in range(n // 2)])
            bottom = perm(n // 2, [inputs[2 * i + 1] for i in range(n // 2)])
            return top + bottom

        return perm(n, list(range(n)))

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_wiring_permutation(self, n):
        circuit = repro.compile_text(programs.routing(n))
        sim = circuit.simulator()
        for j in range(n):
            sim.poke(f"input[{j}]", j + 1)
        sim.step()
        outs = [sim.peek_int(f"output[{j}]") for j in range(n)]
        expected = [v + 1 for v in self.butterfly_permutation(n)]
        assert outs == expected

    def test_width_preserved(self):
        circuit = repro.compile_text(programs.routing(4))
        sim = circuit.simulator()
        sim.poke("input[0]", 0x2AB)  # 10-bit payload
        for j in range(1, 4):
            sim.poke(f"input[{j}]", 0)
        sim.step()
        outs = [sim.peek_int(f"output[{j}]") for j in range(4)]
        assert 0x2AB in outs


class TestSection8:
    def test_switch_semantics(self):
        circuit = repro.compile_text(programs.SECTION8)
        sim = circuit.simulator()
        base = dict(a=1, b=1, c=0, rin=0)
        # x selects AND(a,b), y selects c; both off -> NOINFL.
        for x, y, want in [(1, 0, "1"), (0, 1, "0"), (0, 0, "NOINFL")]:
            for k, v in base.items():
                sim.poke(k, v)
            sim.poke("x", x); sim.poke("y", y)
            sim.step()
            assert str(sim.peek("out")[0]) == want

    def test_both_switches_on_burns(self):
        circuit = repro.compile_text(programs.SECTION8)
        sim = circuit.simulator()
        for k, v in dict(a=1, b=1, c=0, rin=0, x=1, y=1).items():
            sim.poke(k, v)
        with pytest.raises(SimulationError):
            sim.step()

    def test_firing_order_is_topological(self):
        circuit = repro.compile_text(programs.SECTION8)
        sim = circuit.simulator(record_firing=True)
        for k, v in dict(a=1, b=1, c=0, rin=1, x=1, y=0).items():
            sim.poke(k, v)
        sim.step()
        order = [name for name, _ in sim.firing_log]
        # 'out' must fire after a, b, x and y (its transitive inputs).
        out_pos = order.index("fig.out")
        for dep in ("fig.a", "fig.b", "fig.x", "fig.y"):
            assert order.index(dep) < out_pos
        # The register output fires independently of (before or without)
        # the inputs: it is a source in the semantics graph.
        assert "fig.r.out" in order

    def test_register_path(self):
        circuit = repro.compile_text(programs.SECTION8)
        sim = circuit.simulator()
        for k, v in dict(a=0, b=0, c=0, x=0, y=0).items():
            sim.poke(k, v)
        sim.poke("rin", 1); sim.step()
        sim.poke("rin", 0); sim.step()
        assert str(sim.peek_bit("rout")) == "1"
        sim.step()
        assert str(sim.peek_bit("rout")) == "0"


class TestChessboard:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_parity_behaviour(self, n):
        """black (odd i+j) passes, white inverts: a column of n cells
        inverts tin[j] once per white cell."""
        circuit = repro.compile_text(programs.chessboard(n))
        sim = circuit.simulator()
        sim.poke("tin", [1] * n)
        sim.poke("lin", [0] * n)
        sim.step()
        bout = [str(b) for b in sim.peek("bout")]
        rout = [str(b) for b in sim.peek("rout")]
        for j in range(1, n + 1):
            whites = sum(1 for i in range(1, n + 1) if (i + j) % 2 == 0)
            assert bout[j - 1] == str(1 ^ (whites % 2))
        for i in range(1, n + 1):
            whites = sum(1 for j in range(1, n + 1) if (i + j) % 2 == 0)
            assert rout[i - 1] == str(0 ^ (whites % 2))

    def test_double_replacement_rejected(self):
        with pytest.raises(Exception, match="more than once"):
            repro.compile_text(
                """
                TYPE cell = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN y := a END;
                t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL v: virtual;
                { v = cell; v = cell }
                BEGIN v.a := a; y := v.y END;
                SIGNAL u: t;
                """
            )

    def test_virtual_used_before_replacement_rejected(self):
        with pytest.raises(Exception, match="virtual"):
            repro.compile_text(
                """
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL v: virtual;
                BEGIN y := v END;
                SIGNAL u: t;
                """
            )
