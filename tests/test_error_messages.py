"""Error-message quality: diagnostics point at the offending source."""

import pytest

import repro
from repro.lang import CheckError, ParseError, SourceText, TypeError_


def diag_text(text):
    circuit = repro.compile_text(text, strict=False)
    return circuit.diagnostics.render()


class TestParseErrorLocations:
    def test_parse_error_carries_span(self):
        text = "TYPE t = COMPONENT (IN a boolean) IS BEGIN END;"
        with pytest.raises(ParseError) as err:
            repro.compile_text(text)
        src = SourceText(text)
        pos = src.position(err.value.span.start)
        # The error points at 'boolean' (the missing ':').
        assert text[err.value.span.start:].startswith("boolean")
        assert pos.line == 1

    def test_lex_error_names_character(self):
        with pytest.raises(Exception, match="illegal character"):
            repro.compile_text("TYPE t = @;")


class TestCheckErrorMessages:
    def test_double_drive_names_signal_and_rule(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN p := 1; p := 0; y := a; * := p END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "'u.p'" in rendered
        assert "power to ground" in rendered

    def test_cycle_error_shows_path(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL s1, s2: boolean;
BEGIN s1 := NOT s2; s2 := NOT s1; y := s1 END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "feedback loop" in rendered
        assert "->" in rendered

    def test_unused_port_suggests_star(self):
        text = """
TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
BEGIN q := p END;
t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL g: inner;
BEGIN g.p := a; y := a END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "close it explicitly with '*'" in rendered

    def test_errors_cite_the_paper_sections(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN IF a THEN p := 1 END; y := a; * := p END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "section 4.7" in rendered


class TestTypeErrorMessages:
    def test_formal_in_assignment(self):
        with pytest.raises(TypeError_, match="formal IN parameter"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN a := 1; y := a END;
SIGNAL u: t;
"""
            )

    def test_width_mismatch_reports_widths(self):
        with pytest.raises(Exception, match="width 2 does not match"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: ARRAY [1..2] OF boolean;
                    OUT y: ARRAY [1..3] OF boolean) IS
BEGIN y := a END;
SIGNAL u: t;
"""
            )

    def test_unknown_pin_names_component(self):
        with pytest.raises(Exception, match="has no pin 'zz'"):
            repro.compile_text(
                """
TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
BEGIN q := p END;
t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL g: inner;
BEGIN g.zz := a; y := g.q END;
SIGNAL u: t;
"""
            )

    def test_undeclared_identifier(self):
        with pytest.raises(Exception, match="undeclared identifier 'ghost'"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN y := ghost END;
SIGNAL u: t;
"""
            )

    def test_recursion_hint(self):
        with pytest.raises(Exception, match="WHEN termination"):
            repro.compile_text(
                """
TYPE loop(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL inner: loop(n+1);
BEGIN inner.a := a; y := inner.y END;
SIGNAL u: loop(1);
"""
            )


class TestDiagnosticSink:
    def _sink(self):
        from repro.lang.errors import DiagnosticSink

        return DiagnosticSink()

    def test_preserves_emission_order(self):
        sink = self._sink()
        sink.warning("first")
        sink.error("second")
        sink.warning("third")
        assert [d.message for d in sink.diagnostics] == [
            "first", "second", "third"]

    def test_errors_and_warnings_filter_by_severity(self):
        sink = self._sink()
        sink.warning("w1")
        sink.error("e1")
        sink.warning("w2")
        assert [d.message for d in sink.errors] == ["e1"]
        assert [d.message for d in sink.warnings] == ["w1", "w2"]

    def test_has_errors(self):
        sink = self._sink()
        assert not sink.has_errors()
        sink.warning("just a warning")
        assert not sink.has_errors()
        sink.error("boom")
        assert sink.has_errors()

    def test_strict_sink_raises_on_error_not_warning(self):
        from repro.lang.errors import DiagnosticSink

        sink = DiagnosticSink(strict=True)
        sink.warning("fine")
        with pytest.raises(CheckError, match="boom"):
            sink.error("boom")

    def test_render_joins_all_diagnostics(self):
        sink = self._sink()
        sink.error("one", phase="check")
        sink.warning("two")
        rendered = sink.render()
        assert "[check] error: one" in rendered
        assert "warning: two" in rendered


class TestDiagnosticRender:
    def test_no_span_renders_without_location(self):
        from repro.lang.errors import Diagnostic, Severity
        from repro.lang.source import NO_SPAN

        source = SourceText("SIGNAL a: boolean;", name="x.zeus")
        diag = Diagnostic(Severity.ERROR, "design-wide problem", NO_SPAN)
        rendered = diag.render(source)
        assert rendered == "error: design-wide problem"
        assert "x.zeus" not in rendered

    def test_span_renders_caret_diagram(self):
        from repro.lang.errors import Diagnostic, Severity
        from repro.lang.source import Span

        source = SourceText("SIGNAL ghost: boolean;", name="x.zeus")
        span = Span(7, 12)  # "ghost"
        rendered = Diagnostic(
            Severity.WARNING, "spooky", span).render(source)
        assert rendered.startswith("x.zeus:1:8: warning: spooky\n")
        assert "SIGNAL ghost: boolean;" in rendered
        assert rendered.endswith("       ^^^^^")

    def test_multi_line_span_clamps_to_first_line(self):
        from repro.lang.errors import Diagnostic, Severity
        from repro.lang.source import Span

        source = SourceText("ab\ncdef\n", name="m.zeus")
        span = Span(0, 7)  # covers both lines
        rendered = Diagnostic(Severity.ERROR, "wide", span).render(source)
        lines = rendered.splitlines()
        assert lines[0] == "m.zeus:1:1: error: wide"
        assert lines[1] == "ab"
        assert lines[2] == "^^"  # carets never spill past the line

    def test_render_without_source_omits_location(self):
        from repro.lang.errors import Diagnostic, Severity
        from repro.lang.source import Span

        diag = Diagnostic(Severity.NOTE, "hint", Span(0, 2), phase="lint")
        assert diag.render(None) == "[lint] note: hint"
