"""Error-message quality: diagnostics point at the offending source."""

import pytest

import repro
from repro.lang import CheckError, ParseError, SourceText, TypeError_


def diag_text(text):
    circuit = repro.compile_text(text, strict=False)
    return circuit.diagnostics.render()


class TestParseErrorLocations:
    def test_parse_error_carries_span(self):
        text = "TYPE t = COMPONENT (IN a boolean) IS BEGIN END;"
        with pytest.raises(ParseError) as err:
            repro.compile_text(text)
        src = SourceText(text)
        pos = src.position(err.value.span.start)
        # The error points at 'boolean' (the missing ':').
        assert text[err.value.span.start:].startswith("boolean")
        assert pos.line == 1

    def test_lex_error_names_character(self):
        with pytest.raises(Exception, match="illegal character"):
            repro.compile_text("TYPE t = @;")


class TestCheckErrorMessages:
    def test_double_drive_names_signal_and_rule(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN p := 1; p := 0; y := a; * := p END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "'u.p'" in rendered
        assert "power to ground" in rendered

    def test_cycle_error_shows_path(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL s1, s2: boolean;
BEGIN s1 := NOT s2; s2 := NOT s1; y := s1 END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "feedback loop" in rendered
        assert "->" in rendered

    def test_unused_port_suggests_star(self):
        text = """
TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
BEGIN q := p END;
t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL g: inner;
BEGIN g.p := a; y := a END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "close it explicitly with '*'" in rendered

    def test_errors_cite_the_paper_sections(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN IF a THEN p := 1 END; y := a; * := p END;
SIGNAL u: t;
"""
        rendered = diag_text(text)
        assert "section 4.7" in rendered


class TestTypeErrorMessages:
    def test_formal_in_assignment(self):
        with pytest.raises(TypeError_, match="formal IN parameter"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN a := 1; y := a END;
SIGNAL u: t;
"""
            )

    def test_width_mismatch_reports_widths(self):
        with pytest.raises(Exception, match="width 2 does not match"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: ARRAY [1..2] OF boolean;
                    OUT y: ARRAY [1..3] OF boolean) IS
BEGIN y := a END;
SIGNAL u: t;
"""
            )

    def test_unknown_pin_names_component(self):
        with pytest.raises(Exception, match="has no pin 'zz'"):
            repro.compile_text(
                """
TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
BEGIN q := p END;
t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL g: inner;
BEGIN g.zz := a; y := g.q END;
SIGNAL u: t;
"""
            )

    def test_undeclared_identifier(self):
        with pytest.raises(Exception, match="undeclared identifier 'ghost'"):
            repro.compile_text(
                """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN y := ghost END;
SIGNAL u: t;
"""
            )

    def test_recursion_hint(self):
        with pytest.raises(Exception, match="WHEN termination"):
            repro.compile_text(
                """
TYPE loop(n) = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL inner: loop(n+1);
BEGIN inner.a := a; y := inner.y END;
SIGNAL u: loop(1);
"""
            )
