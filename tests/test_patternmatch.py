"""The Foster/Kung systolic pattern matcher (section 10, E5).

Timing model (derived in EXPERIMENTS.md): pattern characters recirculate
into cell 1 every other cycle (the end-of-pattern marker rides with the
last character), string characters enter cell L on the opposite phase
grid; the match result for alignment m appears on the ``result`` pin at
cycle 2m + 3L - 1 after feeding starts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.stdlib import programs

_CACHE: dict[int, repro.Circuit] = {}


def circuit(length: int) -> repro.Circuit:
    if length not in _CACHE:
        _CACHE[length] = repro.compile_text(programs.patternmatch(length))
    return _CACHE[length]


def run_matcher(pattern, string, wild=None):
    L = len(pattern)
    wild = wild or [0] * L
    # Stream lead-in: L zero pads ahead of the string keep the garbage
    # compares of each cell's *first* accumulation window benign (the
    # Foster/Kung pipeline-fill discipline); real alignments shift by L.
    padded = [0] * L + list(string)
    sim = circuit(L).simulator()
    for p in ("pattern", "string", "endofpattern", "wild", "resultin"):
        sim.poke(p, 0)
    sim.poke("RSET", 1)
    sim.step(L + 2)  # flush the marker/wildcard pipelines
    sim.poke("RSET", 0)
    n_align = len(string) - L + 1
    out = []
    for t in range(2 * (L + max(n_align, 1)) + 3 * L + 4):
        if t % 2 == 0:
            j = (t // 2) % L
            sim.poke("pattern", pattern[j])
            sim.poke("endofpattern", 1 if j == L - 1 else 0)
            sim.poke("wild", wild[j])
            k = t // 2
            sim.poke("string", padded[k] if k < len(padded) else 0)
        else:
            sim.poke("pattern", 0)
            sim.poke("endofpattern", 0)
            sim.poke("wild", 0)
            sim.poke("string", 0)
        sim.step()
        out.append(str(sim.peek_bit("result")))
    # The result for (padded) alignment m appears at cycle 2m + 3L - 1;
    # real alignment k is padded alignment k + L.
    return [out[2 * (m + L) + 3 * L - 1] for m in range(n_align)]


def golden(pattern, string, wild=None):
    L = len(pattern)
    wild = wild or [0] * L
    return [
        "1"
        if all(wild[j] or string[k + j] == pattern[j] for j in range(L))
        else "0"
        for k in range(len(string) - L + 1)
    ]


class TestMatching:
    def test_paper_sized_example(self):
        pattern = [1, 0, 1]
        string = [1, 0, 1, 1, 0, 1, 0]
        assert run_matcher(pattern, string) == golden(pattern, string)

    def test_no_match_anywhere(self):
        pattern = [1, 1, 1]
        string = [0, 1, 0, 1, 1, 0]
        assert run_matcher(pattern, string) == ["0"] * 4

    def test_match_everywhere(self):
        pattern = [0, 0, 0]
        string = [0] * 7
        assert run_matcher(pattern, string) == ["1"] * 5

    def test_wildcards(self):
        pattern = [1, 0, 0]
        wild = [0, 1, 0]  # effectively 1?0
        string = [1, 1, 0, 1, 0, 0, 0]
        assert run_matcher(pattern, string, wild) == golden(pattern, string, wild)

    def test_all_wild_matches_everything(self):
        pattern = [1, 1, 1]
        wild = [1, 1, 1]
        string = [0, 1, 0, 0, 1]
        assert run_matcher(pattern, string, wild) == ["1", "1", "1"]

    def test_length_five(self):
        pattern = [1, 0, 1, 1, 0]
        string = [0, 1, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0]
        assert run_matcher(pattern, string) == golden(pattern, string)

    @given(
        st.lists(st.integers(0, 1), min_size=3, max_size=3),
        st.lists(st.integers(0, 1), min_size=3, max_size=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_patterns_match_golden(self, pattern, string):
        assert run_matcher(pattern, string) == golden(pattern, string)

    @given(
        st.lists(st.integers(0, 1), min_size=5, max_size=5),
        st.lists(st.integers(0, 1), min_size=5, max_size=5),
        st.lists(st.integers(0, 1), min_size=8, max_size=12),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_wildcards_match_golden(self, pattern, wild, string):
        assert run_matcher(pattern, string, wild) == golden(pattern, string, wild)


class TestStructure:
    def test_cell_inventory(self):
        c = circuit(3)
        comps = [i for i in c.design.instances if i.type.name == "comparator"]
        accs = [i for i in c.design.instances if i.type.name == "accumulator"]
        assert len(comps) == 3 and len(accs) == 3

    def test_register_count(self):
        # 2 per comparator (p, s) + 4 per accumulator (tp, l, x, r).
        assert circuit(3).stats()["registers"] == 3 * 6

    def test_systolic_data_movement(self):
        """The final figure of the paper: pattern moves right, string
        moves left, one cell per cycle."""
        sim = circuit(3).simulator()
        for p in ("pattern", "string", "endofpattern", "wild", "resultin"):
            sim.poke(p, 0)
        sim.poke("RSET", 1); sim.step(5); sim.poke("RSET", 0)
        sim.poke("pattern", 1); sim.poke("string", 1)
        sim.step()
        sim.poke("pattern", 0); sim.poke("string", 0)
        p_positions, s_positions = [], []
        for _ in range(3):
            # The characters latched at the end of the injection cycle
            # become visible on p.out/s.out in the *next* evaluation.
            sim.step()
            p_row = [str(sim.peek_bit(f"match.pe[{i}].comp.p.out")) for i in (1, 2, 3)]
            s_row = [str(sim.peek_bit(f"match.pe[{i}].comp.s.out")) for i in (1, 2, 3)]
            p_positions.append(p_row.index("1") + 1 if "1" in p_row else None)
            s_positions.append(s_row.index("1") + 1 if "1" in s_row else None)
        assert p_positions == [1, 2, 3]   # rightward
        assert s_positions == [3, 2, 1]   # leftward
