"""Documentation stays executable: the README/API quickstart snippets."""

import re

import repro


def test_package_docstring_example():
    """The example in repro.__doc__ runs as written."""
    doc = repro.__doc__
    code = re.search(r"Quickstart::\n\n(.*)\n\"?", doc, re.S)
    snippet = "\n".join(
        line[4:] for line in doc.splitlines()
        if line.startswith("    ")
    )
    namespace = {}
    exec(snippet, namespace)  # raises on any failure


def test_readme_quickstart_block():
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "README.md")
    text = open(path, encoding="utf-8").read()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert blocks, "README has no python example"
    namespace = {}
    exec(blocks[0], namespace)


def test_language_manual_appendix_compiles_and_runs():
    """The complete program in the LANGUAGE.md appendix compiles,
    checks cleanly, and accumulates as described."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "docs", "LANGUAGE.md")
    text = open(path, encoding="utf-8").read()
    blocks = re.findall(r"```zeus\n(.*?)```", text, re.S)
    assert blocks, "LANGUAGE.md has no zeus example block"
    circuit = repro.compile_text(blocks[0])
    sim = circuit.simulator()
    sim.poke("RSET", 1); sim.poke("en", 0); sim.poke("d", 0); sim.step()
    sim.poke("RSET", 0); sim.poke("en", 1); sim.poke("d", 3)
    values = []
    for _ in range(4):
        sim.step()
        values.append(sim.peek_int("q"))
    assert values == [0, 3, 6, 9]
