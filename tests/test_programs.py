"""All bundled paper programs compile cleanly and have plausible sizes."""

import pytest

import repro
from repro.stdlib import programs


@pytest.mark.parametrize("name", sorted(programs.ALL_PROGRAMS))
def test_compiles_without_errors(name):
    circuit = repro.compile_text(programs.ALL_PROGRAMS[name])
    assert not circuit.diagnostics.has_errors(), circuit.diagnostics.render()


@pytest.mark.parametrize(
    "name, min_nets, registers",
    [
        ("adders", 50, 0),
        ("blackjack", 200, 14),   # 5+5 score/card, 1 ace, 3 state
        ("trees", 30, 0),
        ("htree", 50, 0),
        ("mux4", 20, 0),
        ("memory", 200, 128),     # 16 words x 8 bits
        ("routing", 500, 0),
        ("patternmatch", 80, 18), # 3 cells x (2 comparator + 4 accumulator)
        ("section8", 10, 1),
        ("chessboard", 50, 0),
    ],
)
def test_sizes(name, min_nets, registers):
    circuit = repro.compile_text(programs.ALL_PROGRAMS[name])
    stats = circuit.stats()
    assert stats["nets"] >= min_nets
    assert stats["registers"] == registers


def test_adder_top_selection():
    c4 = repro.compile_text(programs.ADDERS, top="adder4")
    cn = repro.compile_text(programs.ADDERS, top="adder")
    # The explicit rippleCarry4 and rippleCarry(4) describe the same
    # hardware (modulo the auxiliary h array of the fixed-width variant).
    assert c4.stats()["gates"] == cn.stats()["gates"]


def test_parameterized_programs_scale():
    small = repro.compile_text(programs.routing(4)).stats()["nets"]
    large = repro.compile_text(programs.routing(16)).stats()["nets"]
    assert large > small * 2


def test_routing_router_count():
    # n/2 * log2(n) routers for the butterfly.
    for n, routers in [(2, 1), (4, 4), (8, 12), (16, 32)]:
        circuit = repro.compile_text(programs.routing(n))
        # Each router contributes 4 ports x 10 bits = 40 pin nets; count
        # instances via the design instead.
        insts = [
            i for i in circuit.design.instances
            if i.type.name == "router"
        ]
        assert len(insts) == routers, (n, len(insts))


def test_htree_leaf_count():
    for n in (1, 4, 16):
        circuit = repro.compile_text(programs.htree(n))
        leaves = [
            i for i in circuit.design.instances
            if i.type.name == "leaftype"
        ]
        assert len(leaves) == n


def test_tree_node_count():
    circuit = repro.compile_text(programs.trees(16), top="a")
    nodes = [i for i in circuit.design.instances if i.type.name == "q"]
    assert len(nodes) == 15  # n-1 broadcast nodes
