"""Layout language tests (paper section 6): slicing floorplans,
orientations, boundary pins, replacement, and the H-tree area result."""

import math

import pytest

import repro
from repro.layout import ORIENTATIONS, Rect, compute_layout, orientation
from repro.layout.geometry import IDENTITY
from repro.stdlib import programs

from zeus_test_utils import compile_ok


def layout_of(text, top=None):
    return repro.compile_text(text, top=top).layout()


class TestGeometry:
    def test_rect_basics(self):
        r = Rect(1, 2, 3, 4)
        assert (r.x2, r.y2, r.area) == (4, 6, 12)

    def test_overlap(self):
        assert Rect(0, 0, 2, 2).overlaps(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 0, 2, 2))

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(3, 3, 1, 1))
        assert (u.w, u.h) == (4, 4)

    def test_rotations_swap_dimensions(self):
        for name in ("rotate90", "rotate270", "flip45", "flip135"):
            assert orientation(name).size(3, 5) == (5, 3)
        for name in ("rotate180", "flip0", "flip90"):
            assert orientation(name).size(3, 5) == (3, 5)

    def test_dihedral_group_closure(self):
        """The seven named elements plus identity form D4."""
        elements = {IDENTITY} | set(ORIENTATIONS.values())
        assert len(elements) == 8
        for a in elements:
            for b in elements:
                assert a.compose(b) in elements

    def test_rotate90_four_times_is_identity(self):
        r = orientation("rotate90")
        assert r.compose(r).compose(r).compose(r) == IDENTITY

    def test_flips_are_involutions(self):
        for name in ("flip0", "flip45", "flip90", "flip135"):
            f = orientation(name)
            assert f.compose(f) == IDENTITY

    def test_unknown_orientation(self):
        with pytest.raises(ValueError):
            orientation("rotate45")


class TestOrderArrangements:
    BASE = """
    TYPE cell = COMPONENT (IN a: boolean; OUT y: boolean) IS
    BEGIN y := a END;
    t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL c: ARRAY [1..4] OF cell;
    {layout}
    BEGIN
        c[1].a := a;
        FOR i := 2 TO 4 DO c[i].a := c[i-1].y END;
        y := c[4].y
    END;
    SIGNAL u: t;
    """

    def plan(self, layout):
        return layout_of(self.BASE.replace("{layout}", layout))

    def test_lefttoright_row(self):
        plan = self.plan("{ ORDER lefttoright FOR i := 1 TO 4 DO c[i] END END }")
        assert (plan.width, plan.height) == (4, 1)
        xs = sorted(r.x for _, r in plan.iter_cells())
        assert xs == [0, 1, 2, 3]

    def test_righttoleft_reverses(self):
        ltr = self.plan("{ ORDER lefttoright c[1]; c[2]; c[3]; c[4] END }")
        rtl = self.plan("{ ORDER righttoleft c[1]; c[2]; c[3]; c[4] END }")
        first_ltr = next(r for n, r in ltr.iter_cells() if "c[1]" in n)
        first_rtl = next(r for n, r in rtl.iter_cells() if "c[1]" in n)
        assert first_ltr.x == 0 and first_rtl.x == 3

    def test_toptobottom_column(self):
        plan = self.plan("{ ORDER toptobottom FOR i := 1 TO 4 DO c[i] END END }")
        assert (plan.width, plan.height) == (1, 4)

    def test_diagonal_staircase(self):
        plan = self.plan(
            "{ ORDER toplefttobottomright FOR i := 1 TO 4 DO c[i] END END }"
        )
        assert (plan.width, plan.height) == (4, 4)
        cells = dict(plan.iter_cells())
        assert len(cells) == 4

    def test_nested_orders(self):
        plan = self.plan(
            "{ ORDER lefttoright ORDER toptobottom c[1]; c[2] END; "
            "ORDER toptobottom c[3]; c[4] END; END }"
        )
        assert (plan.width, plan.height) == (2, 2)

    def test_no_overlaps(self):
        plan = self.plan(
            "{ ORDER lefttoright ORDER toptobottom c[1]; c[2] END; "
            "ORDER toptobottom c[3]; c[4] END; END }"
        )
        cells = list(plan.iter_cells())
        for i, (_, a) in enumerate(cells):
            for _, b in cells[i + 1:]:
                assert not a.overlaps(b)

    def test_unplaced_cells_get_default_stack(self):
        plan = self.plan("")  # no layout at all
        assert plan.leaf_count() == 4
        assert (plan.width, plan.height) == (1, 4)

    def test_render_text_covers_grid(self):
        plan = self.plan("{ ORDER lefttoright FOR i := 1 TO 4 DO c[i] END END }")
        assert plan.render_text() == "cccc"

    def test_render_svg_contains_cells(self):
        plan = self.plan("{ ORDER lefttoright FOR i := 1 TO 4 DO c[i] END END }")
        svg = plan.render_svg()
        assert svg.count("<rect") == 4


class TestBoundaryPins:
    def test_pins_recorded(self):
        plan = layout_of(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean)
            { BOTTOM a; y } IS
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        assert plan.pins.get("bottom") == ["a", "y"]

    def test_multiple_sides(self):
        plan = layout_of(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean)
            { LEFT a; RIGHT y } IS
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )
        assert plan.pins.get("left") == ["a"]
        assert plan.pins.get("right") == ["y"]


class TestPaperLayouts:
    def test_adder_row(self):
        plan = layout_of(programs.ripple_carry(8), top="adder")
        assert plan.width == 8  # one fulladder per column

    @pytest.mark.parametrize("n", [1, 4, 16, 64])
    def test_htree_linear_area(self, n):
        plan = layout_of(programs.htree(n))
        side = max(1, int(math.sqrt(n)))
        assert (plan.width, plan.height) == (side, side)
        assert plan.area == max(1, n)

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_naive_tree_superlinear_area(self, n):
        plan = layout_of(programs.trees(n), top="b")
        # Width n/2 leaves-row, height log2(n): Theta(n log n) area.
        assert plan.width == n // 2
        assert plan.height == int(math.log2(n))

    def test_htree_beats_naive_tree_asymptotically(self):
        ratios = []
        for n in (16, 64):
            h = layout_of(programs.htree(n)).area
            t = layout_of(programs.trees(n), top="b").area
            ratios.append(t / h)
        assert ratios[1] > ratios[0] > 1

    def test_chessboard_grid(self):
        plan = layout_of(programs.chessboard(4))
        assert (plan.width, plan.height) == (4, 4)
        assert plan.leaf_count() == 16

    def test_patternmatch_column_per_cell(self):
        plan = layout_of(programs.patternmatch(5))
        assert plan.width == 5
        # Column: comparator (p over s) above accumulator (tp, l, x, r).
        assert plan.height == 6
        assert plan.leaf_count() == 30

    def test_orientation_in_htree_layout(self):
        plan = layout_of(programs.htree(16))
        # flip90 cells exist in the hierarchy.
        def collect(p):
            out = [p.orientation] if p.orientation else []
            for c in p.children:
                out += collect(c)
            return out

        assert "flip90" in collect(plan)


class TestReplacementInteraction:
    def test_replaced_cells_are_placed(self):
        plan = layout_of(programs.chessboard(2))
        names = [n for n, _ in plan.iter_cells()]
        assert len(names) == 4
        assert all("m[" in n for n in names)
