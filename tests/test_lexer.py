"""Lexer tests: the vocabulary of paper section 2."""

import pytest

from repro.lang import LexError, SourceText, TokenKind, tokenize
from repro.lang.lexer import Lexer


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestIdentifiersAndKeywords:
    def test_simple_identifier(self):
        toks = tokenize("foo")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].text == "foo"

    def test_identifier_with_digits(self):
        assert texts("h2 x3y") == ["h2", "x3y"]

    def test_keywords_are_reserved(self):
        assert kinds("COMPONENT ARRAY BEGIN END") == [
            TokenKind.COMPONENT,
            TokenKind.ARRAY,
            TokenKind.BEGIN,
            TokenKind.END,
        ]

    def test_keywords_are_case_sensitive(self):
        # Lowercase 'array' is an ordinary identifier (the Blackjack
        # example uses 'end' as a constant name).
        assert kinds("array end END") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.END,
        ]

    def test_all_paper_keywords(self):
        words = (
            "AND ARRAY BEGIN BIN BOTTOM CLK COMPONENT CONST DIV DO DOWNTO "
            "ELSE ELSIF END FOR IF IN IS LEFT MOD NOT NUM OF OR ORDER "
            "OTHERWISE OTHERWISEWHEN OUT PARALLEL RSET RESULT RIGHT "
            "SEQUENTIAL SEQUENTIALLY SIGNAL THEN TO TOP TYPE USES WHEN WITH"
        )
        ks = kinds(words)
        assert all(k is not TokenKind.IDENT for k in ks)
        assert len(ks) == len(words.split())

    def test_predefined_components_are_identifiers(self):
        # REG, XOR, EQUAL etc. are pervasive identifiers, not keywords.
        assert kinds("REG XOR EQUAL NAND NOR RANDOM") == [TokenKind.IDENT] * 6


class TestNumbers:
    def test_decimal(self):
        tok = tokenize("1234")[0]
        assert tok.kind is TokenKind.NUMBER
        assert tok.value == 1234

    def test_octal_suffix_B(self):
        assert tokenize("17B")[0].value == 0o17

    def test_octal_suffix_lowercase(self):
        assert tokenize("17b")[0].value == 0o17

    def test_invalid_octal_digits(self):
        with pytest.raises(LexError):
            tokenize("19B")

    def test_number_followed_by_letters_is_error(self):
        with pytest.raises(LexError):
            tokenize("12x")

    def test_zero(self):
        assert tokenize("0")[0].value == 0


class TestSymbols:
    def test_assignment_operators(self):
        assert kinds(":= ==") == [TokenKind.ASSIGN, TokenKind.ALIAS]

    def test_relations(self):
        assert kinds("< <= > >= = <>") == [
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
            TokenKind.EQ,
            TokenKind.NEQ,
        ]

    def test_range_vs_dot(self):
        assert kinds(".. .") == [TokenKind.DOTDOT, TokenKind.DOT]

    def test_longest_match(self):
        # ':=' must not lex as ':' '='.
        assert kinds("a:=b") == [TokenKind.IDENT, TokenKind.ASSIGN, TokenKind.IDENT]

    def test_brackets_braces(self):
        assert kinds("()[]{}") == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
        ]

    def test_star(self):
        assert kinds("*") == [TokenKind.STAR]

    def test_illegal_character(self):
        with pytest.raises(LexError):
            tokenize("a ? b")


class TestComments:
    def test_simple_comment(self):
        assert texts("a <* comment *> b") == ["a", "b"]

    def test_nested_comments(self):
        assert texts("a <* outer <* inner *> still out *> b") == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("a <* never ends")

    def test_comment_with_symbols(self):
        assert texts("x <* the * indicates no connection :=; *> y") == ["x", "y"]


class TestPositions:
    def test_spans_point_at_source(self):
        src = SourceText("abc  def", "t.zeus")
        toks = Lexer(src).tokens()
        assert src.snippet(toks[0].span) == "abc"
        assert src.snippet(toks[1].span) == "def"

    def test_line_column(self):
        src = SourceText("a\n  b\n")
        toks = Lexer(src).tokens()
        pos = src.position(toks[1].span.start)
        assert (pos.line, pos.column) == (2, 3)

    def test_eof_token_present(self):
        assert tokenize("")[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert tokenize("  \t\n ")[0].kind is TokenKind.EOF
