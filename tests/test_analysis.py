"""Analysis utilities: depth, critical path, fan-out, cones, equivalence,
DOT export."""

import pytest

import repro
from repro.analysis import (
    cone_of_influence,
    critical_path,
    exhaustive_equivalent,
    fanout,
    logic_depth,
    max_fanout,
    random_equivalent,
    register_paths,
    summary,
    to_dot,
)
from repro.stdlib import programs

from zeus_test_utils import compile_ok

CHAIN = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL s1, s2, s3: boolean;
BEGIN
    s1 := NOT a;
    s2 := NOT s1;
    s3 := NOT s2;
    y := NOT s3
END;
SIGNAL u: t;
"""


class TestDepth:
    def test_chain_depth(self):
        circuit = compile_ok(CHAIN)
        # a -> gate -> s1 -> gate -> s2 -> gate -> s3 -> gate -> y:
        # 4 gates, each contributing 2 levels (gate out + named net).
        assert logic_depth(circuit.netlist) == 8

    def test_adder_depth_grows_with_width(self):
        d4 = logic_depth(
            compile_ok(programs.ripple_carry(4), top="adder").netlist
        )
        d8 = logic_depth(
            compile_ok(programs.ripple_carry(8), top="adder").netlist
        )
        assert d8 > d4  # the carry chain

    def test_critical_path_endpoints(self):
        circuit = compile_ok(CHAIN)
        path = critical_path(circuit.netlist)
        assert path[0] == "u.a"
        assert path[-1] == "u.y"

    def test_register_breaks_depth(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL r: REG;
            BEGIN
                r.in := NOT a;
                y := NOT r.out
            END;
            SIGNAL u: t;
            """
        )
        assert logic_depth(circuit.netlist) <= 4

    def test_register_paths(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL r: REG;
            BEGIN
                r.in := NOT NOT NOT a;
                y := r.out
            END;
            SIGNAL u: t;
            """
        )
        paths = register_paths(circuit.netlist)
        assert paths["u.r"] >= 4


class TestFanout:
    def test_broadcast_fanout(self):
        circuit = compile_ok(programs.trees(16), top="a")
        name, fo = max_fanout(circuit.netlist)
        assert fo >= 2

    def test_fanout_counts_guards(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c, a: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c THEN z := a END;
                y := c
            END;
            SIGNAL u: t;
            """
        )
        counts = fanout(circuit.netlist)
        c_net = circuit.netlist.find(circuit.netlist.port("c").nets[0]).id
        assert counts[c_net] >= 2  # guard + y driver

    def test_summary_keys(self):
        circuit = compile_ok(CHAIN)
        info = summary(circuit.netlist)
        assert "logic_depth" in info and "max_fanout" in info


class TestCone:
    def test_cone_of_output(self):
        circuit = compile_ok(CHAIN)
        y = circuit.netlist.port("y").nets[0]
        cone = cone_of_influence(circuit.netlist, y)
        assert "u.a" in cone
        assert "u.s1" in cone and "u.s3" in cone

    def test_cone_stops_at_registers(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL r: REG;
            BEGIN r.in := a; y := NOT r.out END;
            SIGNAL u: t;
            """
        )
        y = circuit.netlist.port("y").nets[0]
        cone = cone_of_influence(circuit.netlist, y)
        assert "u.r.out" in cone
        assert "u.a" not in cone  # blocked by the register


class TestEquivalence:
    def test_adder_formulations_equivalent(self):
        a = compile_ok(programs.ADDERS, top="adder4")
        b = compile_ok(programs.ADDERS, top="adder")
        report = exhaustive_equivalent(a, b)
        assert report
        assert report.vectors_checked == 16 * 16 * 2

    def test_tree_formulations_equivalent(self):
        a = compile_ok(programs.trees(8), top="a")
        b = compile_ok(programs.trees(8), top="b")
        assert exhaustive_equivalent(a, b)

    def test_detects_inequivalence(self):
        good = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
            BEGIN y := AND(a, b) END;
            SIGNAL u: t;
            """
        )
        bad = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
            BEGIN y := OR(a, b) END;
            SIGNAL u: t;
            """
        )
        report = exhaustive_equivalent(good, bad)
        assert not report
        assert report.mismatches
        assert "y" == report.mismatches[0].pin

    def test_interface_mismatch_rejected(self):
        a = compile_ok(programs.ADDERS, top="adder4")
        b = compile_ok(programs.trees(4), top="a")
        with pytest.raises(ValueError, match="interfaces differ"):
            exhaustive_equivalent(a, b)

    def test_random_equivalence_wide(self):
        a = compile_ok(programs.ripple_carry(16), top="adder")
        b = compile_ok(programs.ripple_carry(16), top="adder")
        assert random_equivalent(a, b, trials=20)

    def test_too_many_bits_rejected(self):
        a = compile_ok(programs.ripple_carry(16), top="adder")
        with pytest.raises(ValueError, match="too many"):
            exhaustive_equivalent(a, a)


class TestDot:
    def test_dot_structure(self):
        circuit = compile_ok(CHAIN)
        dot = to_dot(circuit.netlist)
        assert dot.startswith("digraph")
        assert dot.count("shape=box") == 4  # the NOT gates
        assert "u.a" in dot and "u.y" in dot

    def test_registers_rendered(self):
        circuit = compile_ok(programs.SECTION8)
        dot = to_dot(circuit.netlist)
        assert "doubleoctagon" in dot

    def test_guarded_edges_dashed(self):
        circuit = compile_ok(programs.SECTION8)
        dot = to_dot(circuit.netlist)
        assert "style=dashed" in dot

    def test_multiplex_shape(self):
        circuit = compile_ok(programs.htree(4))
        dot = to_dot(circuit.netlist)
        assert "hexagon" in dot

    def test_write_dot(self, tmp_path):
        from repro.analysis import write_dot

        circuit = compile_ok(CHAIN)
        path = tmp_path / "g.dot"
        write_dot(circuit.netlist, str(path))
        assert path.read_text().startswith("digraph")


class TestSeededEquivalence:
    """random_equivalent is reproducible: the seed is recorded on the
    report and the same seed replays the same vectors."""

    def test_seed_recorded(self):
        a = compile_ok(programs.ripple_carry(16), top="adder")
        b = compile_ok(programs.ripple_carry(16), top="adder")
        report = random_equivalent(a, b, trials=5, seed=42)
        assert report.seed == 42

    def test_same_seed_same_mismatches(self):
        import repro

        or2 = (
            "TYPE t = COMPONENT (IN a, b: boolean; OUT z: boolean) IS\n"
            "BEGIN\n    z := OR(a, b)\nEND;\nSIGNAL u: t;\n"
        )
        and2 = or2.replace("OR(a, b)", "AND(a, b)")
        a = repro.compile_text(or2, name="or2", strict=False)
        b = repro.compile_text(and2, name="and2", strict=False)
        first = random_equivalent(a, b, trials=30, seed=7)
        second = random_equivalent(a, b, trials=30, seed=7)
        assert not first.equivalent
        assert first.seed == second.seed == 7
        assert [str(m) for m in first.mismatches] == \
            [str(m) for m in second.mismatches]
