"""Edge cases across the pipeline: less-travelled language corners."""

import pytest

import repro
from repro.core.values import Logic
from repro.lang import CheckError, ElaborationError, TypeError_

from zeus_test_utils import compile_ok


class TestPredefinedSignals:
    def test_rset_readable_as_condition(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN
                IF RSET THEN y := 0 ELSE y := a END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.poke("RSET", 1); sim.step()
        assert str(sim.peek_bit("y")) == "0"
        sim.poke("RSET", 0); sim.step()
        assert str(sim.peek_bit("y")) == "1"

    def test_rset_defaults_to_zero(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN
                IF RSET THEN y := 0 ELSE y := a END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()  # RSET never poked: defaults low
        assert str(sim.peek_bit("y")) == "1"

    def test_clk_is_readable(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := OR(a, CLK) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0)
        sim.poke("CLK", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"


class TestSelectors:
    def test_field_range_in_expression(self):
        circuit = compile_ok(
            """
            TYPE rec = COMPONENT (p, q, r: boolean);
            t = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                           OUT y: ARRAY [1..2] OF boolean) IS
            SIGNAL s: rec;
            BEGIN
                s.p := a[1]; s.q := a[2]; s.r := a[3];
                y := s.p..q
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [1, 0, 1])
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["1", "0"]

    def test_slice_assignment(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..4] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN
                y[1..2] := a[3..4];
                y[3..4] := a[1..2]
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0b0011)
        sim.step()
        assert sim.peek_int("y") == 0b1100

    def test_whole_structure_abbreviation(self):
        # "score denotes the five signals score[1..5]".
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..5] OF boolean;
                                OUT y: ARRAY [1..5] OF boolean) IS
            SIGNAL score: ARRAY [1..5] OF boolean;
            BEGIN
                score := a;
                y := score
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 21)
        sim.step()
        assert sim.peek_int("y") == 21

    def test_matrix_rightmost_omitted_first(self):
        # matrix[2] == matrix[2][1..n] (the row).
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..2] OF boolean;
                                OUT y: ARRAY [1..2] OF boolean) IS
            SIGNAL m: ARRAY [1..2] OF ARRAY [1..2] OF boolean;
            BEGIN
                m[1] := a;
                m[2] := NOT a;
                y := m[2]
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", [1, 0])
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["0", "1"]


class TestStars:
    def test_star_with_explicit_width_in_alias(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean;
                                z: ARRAY [1..3] OF multiplex) IS
            BEGIN
                z == * : 3;
                y := a
            END;
            SIGNAL u: t;
            """
        )

    def test_star_rhs_expands_to_target_width(self):
        circuit = compile_ok(
            """
            TYPE inner = COMPONENT (IN p: ARRAY [1..3] OF boolean;
                                    OUT q: boolean) IS
            BEGIN q := p[1] END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL g: inner;
            BEGIN
                g.p := *;      <* all three inputs left open *>
                y := g.q; * := a
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()
        assert str(sim.peek_bit("y")) == "UNDEF"

    def test_two_flexible_stars_rejected(self):
        with pytest.raises((ElaborationError, TypeError_)):
            repro.compile_text(
                """
                TYPE inner = COMPONENT (IN p: ARRAY [1..3] OF boolean;
                                        OUT q: boolean) IS
                BEGIN q := p[1] END;
                t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL g: inner;
                BEGIN
                    g((*, a, *), y)
                END;
                SIGNAL u: t;
                """
            )


class TestNumEdgeCases:
    def test_address_beyond_array_reads_noinfl(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN addr: ARRAY [1..3] OF boolean;
                                OUT y: boolean) IS
            SIGNAL mem: ARRAY [0..3] OF boolean;  <* only 4 of 8 codes *>
            BEGIN
                FOR i := 0 TO 3 DO mem[i] := 1 END;
                y := OR(mem[NUM(addr)], 0)
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("addr", 2)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"
        sim.poke("addr", 7)  # unaddressable: no element selected
        sim.step()
        assert str(sim.peek_bit("y")) == "UNDEF"

    def test_num_write_guard_composes_with_if(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN we, d: boolean;
                                IN addr: ARRAY [1..2] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            SIGNAL r: ARRAY [0..3] OF ARRAY [1..1] OF REG;
            BEGIN
                IF we THEN r[NUM(addr)].in := (d) END;
                FOR i := 0 TO 3 DO y[i+1] := r[i].out[1] END;
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("we", 1); sim.poke("addr", 2); sim.poke("d", 1); sim.step()
        sim.poke("we", 0); sim.step()
        assert [str(b) for b in sim.peek("y")] == ["UNDEF", "UNDEF", "1", "UNDEF"]


class TestRecordsAndBuses:
    def test_record_local_signal_is_wires(self):
        circuit = compile_ok(
            """
            TYPE bus = COMPONENT (data: ARRAY [1..4] OF boolean; tag: boolean);
            t = COMPONENT (IN a: ARRAY [1..4] OF boolean; IN tg: boolean;
                           OUT y: ARRAY [1..4] OF boolean; OUT yt: boolean) IS
            SIGNAL b: bus;
            BEGIN
                b.data := a;
                b.tag := tg;
                y := b.data;
                yt := b.tag
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 9); sim.poke("tg", 1)
        sim.step()
        assert sim.peek_int("y") == 9
        assert str(sim.peek_bit("yt")) == "1"

    def test_record_cannot_take_connection_statement(self):
        with pytest.raises(TypeError_, match="instantiated component"):
            repro.compile_text(
                """
                TYPE bus = COMPONENT (p, q: boolean);
                t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                SIGNAL b: bus;
                BEGIN b(a, y); y := a END;
                SIGNAL u: t;
                """
            )


class TestWithInteractions:
    def test_with_under_if_guards_assignments(self):
        circuit = compile_ok(
            """
            TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
            BEGIN q := NOT p END;
            t = COMPONENT (IN en, a: boolean; OUT y: boolean; z: multiplex) IS
            SIGNAL g: inner;
            BEGIN
                IF en THEN
                    WITH g DO
                        p := a;
                        z := q
                    END;
                END;
                * := g.q;
                y := en
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("en", 0); sim.poke("a", 0); sim.step()
        assert sim.peek("z")[0] is Logic.NOINFL
        sim.poke("en", 1); sim.step()
        assert str(sim.peek("z")[0]) == "1"

    def test_nested_with_scopes(self):
        circuit = compile_ok(
            """
            TYPE leaf = COMPONENT (IN p: boolean; OUT q: boolean) IS
            BEGIN q := NOT p END;
            mid = COMPONENT (IN x: boolean; OUT z: boolean) IS
            SIGNAL inner: leaf;
            BEGIN inner(x, z) END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL m: mid;
            BEGIN
                WITH m DO
                    x := a;
                    y := z
                END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0)
        sim.step()
        assert str(sim.peek_bit("y")) == "1"


class TestOctalAndConstants:
    def test_octal_in_array_bounds(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..10B] OF boolean;
                                OUT y: boolean) IS
            BEGIN y := a[8] END;   <* 10B = 8 *>
            SIGNAL u: t;
            """
        )
        assert len(circuit.netlist.port("a").nets) == 8

    def test_signal_constant_as_source(self):
        circuit = compile_ok(
            """
            CONST pattern = (1, 0, 1, 1);
            TYPE t = COMPONENT (IN a: boolean; OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN y := pattern; * := a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.step()
        assert sim.peek_int("y") == 0b1101

    def test_indexed_constant(self):
        circuit = compile_ok(
            """
            CONST table = ((0,0), (0,1), (1,0));
            TYPE t = COMPONENT (IN a: boolean; OUT y: ARRAY [1..2] OF boolean) IS
            BEGIN y := table[3]; * := a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.step()
        assert [str(b) for b in sim.peek("y")] == ["1", "0"]


class TestMiscErrors:
    def test_index_out_of_bounds_at_elaboration(self):
        with pytest.raises(ElaborationError, match="out of bounds"):
            repro.compile_text(
                """
                TYPE t = COMPONENT (IN a: ARRAY [1..3] OF boolean;
                                    OUT y: boolean) IS
                BEGIN y := a[4] END;
                SIGNAL u: t;
                """
            )

    def test_gate_width_mismatch(self):
        with pytest.raises(TypeError_, match="same number"):
            repro.compile_text(
                """
                TYPE t = COMPONENT (IN a: ARRAY [1..2] OF boolean;
                                    IN b: ARRAY [1..3] OF boolean;
                                    OUT y: ARRAY [1..2] OF boolean) IS
                BEGIN y := AND(a, b) END;
                SIGNAL u: t;
                """
            )

    def test_equal_needs_two_args(self):
        with pytest.raises(TypeError_, match="EQUAL takes two"):
            repro.compile_text(
                """
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN y := EQUAL(a) END;
                SIGNAL u: t;
                """
            )

    def test_star_in_gate_rejected(self):
        with pytest.raises((ElaborationError, TypeError_)):
            repro.compile_text(
                """
                TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
                BEGIN y := AND(a, *) END;
                SIGNAL u: t;
                """
            )
