"""SigTree unit tests: navigation, laziness, virtual replacement."""

import pytest

from repro.core.netlist import Netlist
from repro.core.sigtree import (
    ArrayTree,
    BitTree,
    CompTree,
    ConcatTree,
    LazyTree,
    VirtualTree,
    force,
)
from repro.core.types import BOOLEAN_T, ArrayV, ComponentV, ParamV
from repro.lang import ElaborationError, ast


def bits(n, netlist=None, kind="boolean"):
    nl = netlist or Netlist()
    return [BitTree(BOOLEAN_T, nl.new_net(f"b{i}", kind)) for i in range(n)]


class TestArrayTree:
    def make(self, lo=1, hi=4):
        elems = bits(hi - lo + 1)
        return ArrayTree(ArrayV(lo, hi, BOOLEAN_T), elems), elems

    def test_index_respects_bounds(self):
        tree, elems = self.make()
        assert tree.index(1) is elems[0]
        assert tree.index(4) is elems[3]

    def test_index_out_of_bounds(self):
        tree, _ = self.make()
        with pytest.raises(ElaborationError, match="out of bounds"):
            tree.index(5)
        with pytest.raises(ElaborationError, match="out of bounds"):
            tree.index(0)

    def test_zero_based_arrays(self):
        elems = bits(3)
        tree = ArrayTree(ArrayV(0, 2, BOOLEAN_T), elems)
        assert tree.index(0) is elems[0]

    def test_slice(self):
        tree, elems = self.make()
        sub = tree.slice(2, 3)
        assert sub.leaves() == [e.net for e in elems[1:3]]

    def test_reversed_slice_rejected(self):
        tree, _ = self.make()
        with pytest.raises(ElaborationError, match="empty slice"):
            tree.slice(3, 2)

    def test_leaves_in_natural_order(self):
        tree, elems = self.make()
        assert tree.leaves() == [e.net for e in elems]

    def test_field_on_basic_rejected(self):
        tree, _ = self.make()
        with pytest.raises(ElaborationError):
            tree.index(1).field("x")


def comp_type(*names):
    return ComponentV("rec", tuple(ParamV(n, ast.Mode.INOUT, BOOLEAN_T) for n in names))


class TestCompTree:
    def test_field_access(self):
        nl = Netlist()
        a, b = bits(2, nl)
        tree = CompTree(comp_type("a", "b"), {"a": a, "b": b})
        assert tree.field("a") is a

    def test_unknown_field(self):
        nl = Netlist()
        a, b = bits(2, nl)
        tree = CompTree(comp_type("a", "b"), {"a": a, "b": b})
        with pytest.raises(ElaborationError, match="no pin"):
            tree.field("zz")

    def test_leaves_follow_declaration_order(self):
        nl = Netlist()
        a, b = bits(2, nl)
        tree = CompTree(comp_type("b", "a"), {"a": a, "b": b})
        assert tree.leaves() == [b.net, a.net]

    def test_field_range(self):
        nl = Netlist()
        a, b, c = bits(3, nl)
        tree = CompTree(comp_type("a", "b", "c"), {"a": a, "b": b, "c": c})
        sub = tree.field_range("a", "b")
        assert sub.leaves() == [a.net, b.net]

    def test_reversed_field_range(self):
        nl = Netlist()
        a, b = bits(2, nl)
        tree = CompTree(comp_type("a", "b"), {"a": a, "b": b})
        with pytest.raises(ElaborationError, match="reversed"):
            tree.field_range("b", "a")

    def test_mapped_field_over_array(self):
        nl = Netlist()
        insts = []
        for i in range(3):
            a, b = bits(2, nl)
            insts.append(CompTree(comp_type("a", "b"), {"a": a, "b": b}))
        arr = ArrayTree(ArrayV(1, 3, insts[0].type), insts)
        mapped = arr.field("b")
        assert mapped.width == 3
        assert mapped.leaves() == [i.fields["b"].net for i in insts]


class TestLazyTree:
    def test_forces_once(self):
        calls = []
        nl = Netlist()

        def maker():
            calls.append(1)
            return bits(1, nl)[0]

        lazy = LazyTree(BOOLEAN_T, maker)
        assert not lazy.is_forced
        lazy.leaves()
        lazy.leaves()
        assert len(calls) == 1
        assert lazy.is_forced

    def test_navigation_forces(self):
        nl = Netlist()
        inner = ArrayTree(ArrayV(1, 2, BOOLEAN_T), bits(2, nl))
        lazy = LazyTree(inner.type, lambda: inner)
        assert lazy.index(2).leaves() == [inner.elems[1].net]

    def test_force_helper(self):
        nl = Netlist()
        bit = bits(1, nl)[0]
        lazy = LazyTree(BOOLEAN_T, lambda: bit)
        assert force(lazy) is bit
        assert force(bit) is bit


class TestVirtualTree:
    def test_unreplaced_use_is_error(self):
        v = VirtualTree(BOOLEAN_T, "m[1][1]")
        with pytest.raises(ElaborationError, match="virtual"):
            v.leaves()

    def test_replaced_forwards(self):
        nl = Netlist()
        v = VirtualTree(BOOLEAN_T, "m")
        v.replaced = bits(1, nl)[0]
        assert v.leaves() == [v.replaced.net]


class TestConcat:
    def test_concat_width_and_order(self):
        nl = Netlist()
        parts = bits(3, nl)
        cat = ConcatTree(parts)
        assert cat.width == 3
        assert cat.leaves() == [p.net for p in parts]
