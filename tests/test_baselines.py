"""Baseline simulator tests: the switch-level MOS model and the
unchecked order-sensitive interpreter (DESIGN.md, E9/E10)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.baselines import (
    SState,
    SwitchCircuit,
    SwitchSimulator,
    UncheckedSimulator,
    build_ripple_adder,
)
from repro.core.elaborate import elaborate
from repro.lang import parse


class TestSwitchPrimitives:
    def test_inverter(self):
        c = SwitchCircuit()
        a = c.node("a", is_input=True)
        out = c.node("out")
        c.inverter(a, out)
        sim = SwitchSimulator(c)
        for v, want in [(0, "1"), (1, "0")]:
            sim.poke("a", v)
            sim.settle()
            assert str(sim.peek("out")) == want

    @pytest.mark.parametrize("gate,table", [
        ("nand2", {(0, 0): "1", (0, 1): "1", (1, 0): "1", (1, 1): "0"}),
        ("nor2", {(0, 0): "1", (0, 1): "0", (1, 0): "0", (1, 1): "0"}),
        ("and2", {(0, 0): "0", (0, 1): "0", (1, 0): "0", (1, 1): "1"}),
        ("or2", {(0, 0): "0", (0, 1): "1", (1, 0): "1", (1, 1): "1"}),
        ("xor2", {(0, 0): "0", (0, 1): "1", (1, 0): "1", (1, 1): "0"}),
    ])
    def test_cmos_cells(self, gate, table):
        c = SwitchCircuit()
        a = c.node("a", is_input=True)
        b = c.node("b", is_input=True)
        out = c.node("out")
        getattr(c, gate)(a, b, out)
        sim = SwitchSimulator(c)
        for (va, vb), want in table.items():
            sim.poke("a", va); sim.poke("b", vb)
            sim.settle()
            assert str(sim.peek("out")) == want, (gate, va, vb)

    def test_x_input_gives_x_through_inverter(self):
        c = SwitchCircuit()
        a = c.node("a", is_input=True)
        out = c.node("out")
        c.inverter(a, out)
        sim = SwitchSimulator(c)
        sim.poke("a", SState.X)
        sim.settle()
        assert sim.peek("out") is SState.X

    def test_charge_retention(self):
        """A pass transistor that turns off leaves the node charged."""
        c = SwitchCircuit()
        g = c.node("g", is_input=True)
        d = c.node("d", is_input=True)
        out = c.node("out")
        c.nmos(g, d, out)
        sim = SwitchSimulator(c)
        sim.poke("g", 1); sim.poke("d", 1); sim.settle()
        assert str(sim.peek("out")) == "1"
        sim.poke("g", 0); sim.poke("d", 0); sim.settle()
        assert str(sim.peek("out")) == "1"  # dynamic storage

    def test_fighting_drivers_give_x(self):
        c = SwitchCircuit()
        g = c.node("g", is_input=True)
        out = c.node("out")
        c.nmos(g, c.vdd, out)
        c.nmos(g, c.gnd, out)
        sim = SwitchSimulator(c)
        sim.poke("g", 1)
        sim.settle()
        assert sim.peek("out") is SState.X


class TestSwitchAdder:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_adder_matches_arithmetic(self, a, b, cin):
        c, ports = _adder()
        sim = SwitchSimulator(c)
        for i, name in enumerate(ports["a"]):
            sim.poke(name, (a >> i) & 1)
        for i, name in enumerate(ports["b"]):
            sim.poke(name, (b >> i) & 1)
        sim.poke("cin", cin)
        sim.settle()
        s = sum(
            (1 if str(sim.peek(n)) == "1" else 0) << i
            for i, n in enumerate(ports["s"])
        )
        cout = 1 if str(sim.peek(ports["cout"][0])) == "1" else 0
        assert s + (cout << 4) == a + b + cin

    def test_needs_multiple_sweeps(self):
        """The structural point of E10: relaxation iterates, the Zeus
        dataflow pass does not."""
        c, ports = build_ripple_adder(8)
        sim = SwitchSimulator(c)
        for i, name in enumerate(ports["a"]):
            sim.poke(name, 1)
        for i, name in enumerate(ports["b"]):
            sim.poke(name, 0)
        sim.poke("cin", 1)  # carry ripples through all 8 stages
        sweeps = sim.settle()
        assert sweeps > 3

    def test_transistor_count_scales_linearly(self):
        t4 = build_ripple_adder(4)[0].transistor_count
        t8 = build_ripple_adder(8)[0].transistor_count
        assert t8 == 2 * t4


_ADDER = []


def _adder():
    if not _ADDER:
        _ADDER.append(build_ripple_adder(4))
    return _ADDER[0]


class TestUncheckedBaseline:
    def design(self, text, top=None):
        return elaborate(parse(text), top=top)

    def test_agrees_on_clean_combinational_design(self):
        text = """
        TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
        SIGNAL s: boolean;
        BEGIN
            s := AND(a, b);
            y := OR(s, b)
        END;
        SIGNAL u: t;
        """
        circuit = repro.compile_text(text)
        zeus = circuit.simulator()
        base = UncheckedSimulator(circuit.design, sweeps=3)
        for a in (0, 1):
            for b in (0, 1):
                zeus.poke("a", a); zeus.poke("b", b); zeus.step()
                base.poke("a", a); base.poke("b", b); base.step()
                assert str(zeus.peek_bit("y")) == str(base.peek("y")[0])

    def test_silently_accepts_double_drive(self):
        """The E9 point: the unchecked baseline produces *some* value
        where Zeus reports the hazard."""
        text = """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL p: boolean;
        BEGIN
            p := 1;
            p := 0;
            y := p
        END;
        SIGNAL u: t;
        """
        design = self.design(text)
        base = UncheckedSimulator(design, sweeps=2)
        base.poke("a", 1)
        base.step()
        assert str(base.peek("y")[0]) == "0"  # last writer won, silently

    def test_single_sweep_misses_late_dependencies(self):
        """Order sensitivity: with one in-order sweep a value assigned
        'later' in the text has not propagated -- the failure mode the
        Zeus dataflow semantics rules out."""
        text = """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL s: boolean;
        BEGIN
            y := NOT s,
            s := NOT a
        END;
        SIGNAL u: t;
        """
        # Build the statements in y-before-s order via elaboration order.
        text = text.replace(",", ";")
        design = self.design(text)
        one = UncheckedSimulator(design, sweeps=1)
        one.poke("a", 1); one.step()
        many = UncheckedSimulator(design, sweeps=3)
        many.poke("a", 1); many.step()
        zeus = repro.compile_text(text).simulator()
        zeus.poke("a", 1); zeus.step()
        assert str(zeus.peek_bit("y")) == "1"
        assert str(many.peek("y")[0]) == "1"
        assert str(one.peek("y")[0]) == "UNDEF"  # stale

    def test_registers_latch(self):
        text = """
        TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
        SIGNAL r: REG;
        BEGIN r(d, q) END;
        SIGNAL u: t;
        """
        design = self.design(text)
        base = UncheckedSimulator(design, sweeps=2)
        base.poke("d", 1); base.step(); base.step()
        assert str(base.peek("q")[0]) == "1"
