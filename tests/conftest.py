"""Pytest fixtures for the Zeus reproduction test suite."""

import pytest

from zeus_test_utils import compile_ok


@pytest.fixture
def halfadder_circuit():
    return compile_ok(
        """
        TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
        BEGIN
            s := XOR(a,b);
            cout := AND(a,b)
        END;
        SIGNAL h: halfadder;
        """
    )
