"""Simulator tests: firing rules, clock cycles, REG semantics, runtime
checks (sections 5 and 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.values import Logic
from repro.lang import SimulationError

from zeus_test_utils import compile_ok, eval_expr


class TestGateEvaluation:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_two_input_gates(self, a, b):
        assert eval_expr("AND(a, b)", a=a, b=b) == str(int(a and b))
        assert eval_expr("OR(a, b)", a=a, b=b) == str(int(a or b))
        assert eval_expr("XOR(a, b)", a=a, b=b) == str(a ^ b)
        assert eval_expr("EQUAL(a, b)", a=a, b=b) == str(int(a == b))

    def test_nand_nor(self):
        assert eval_expr("NAND(a, b)", a=1, b=1) == "0"
        assert eval_expr("NAND(a, b)", a=0, b=1) == "1"
        assert eval_expr("NOR(a, b)", a=0, b=0) == "1"
        assert eval_expr("NOR(a, b)", a=1, b=0) == "0"

    def test_not(self):
        assert eval_expr("NOT a", a=0, b=0) == "1"
        assert eval_expr("NOT a", a=1, b=0) == "0"

    def test_nary_gates(self):
        assert eval_expr("AND(a, b, c)", a=1, b=1, c=1) == "1"
        assert eval_expr("AND(a, b, c)", a=1, b=1, c=0) == "0"
        assert eval_expr("OR(a, b, c)", a=0, b=0, c=0) == "0"

    def test_nested(self):
        assert eval_expr("OR(AND(a, b), NOT c)", a=1, b=0, c=1) == "0"

    def test_undef_propagation(self):
        # Unpoked input is UNDEF; AND(0, UNDEF) short-circuits to 0.
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: boolean; OUT y0, y1: boolean) IS
            BEGIN
                y0 := AND(a, b);
                y1 := OR(a, b)
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0)  # b left UNDEF
        sim.step()
        assert str(sim.peek_bit("y0")) == "0"   # 0 dominates AND
        assert str(sim.peek_bit("y1")) == "UNDEF"

    def test_vector_equal_is_single_bit(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: ARRAY [1..3] OF boolean;
                                OUT y: boolean) IS
            BEGIN y := EQUAL(a, b) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 5); sim.poke("b", 5); sim.step()
        assert str(sim.peek_bit("y")) == "1"
        sim.poke("b", 4); sim.step()
        assert str(sim.peek_bit("y")) == "0"

    def test_bitwise_ops_vectorize(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: ARRAY [1..4] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN y := AND(a, b) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 0b1100); sim.poke("b", 0b1010); sim.step()
        assert sim.peek_int("y") == 0b1000

    def test_random_is_deterministic_per_seed(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := AND(a, RANDOM()) END;
            SIGNAL u: t;
            """
        )
        runs = []
        for _ in range(2):
            sim = circuit.simulator(seed=42)
            sim.poke("a", 1)
            bits = []
            for _ in range(16):
                sim.step()
                bits.append(str(sim.peek_bit("y")))
            runs.append(bits)
        assert runs[0] == runs[1]
        assert "0" in runs[0] and "1" in runs[0]


class TestRegisters:
    def test_out_is_previous_in(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN r(d, q) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("d", 1); sim.step()
        assert str(sim.peek_bit("q")) == "UNDEF"  # initial contents
        sim.poke("d", 0); sim.step()
        assert str(sim.peek_bit("q")) == "1"
        sim.step()
        assert str(sim.peek_bit("q")) == "0"

    def test_unwritten_register_keeps_value(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d, en: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN
                IF en THEN r.in := d END;
                q := r.out
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("d", 1); sim.poke("en", 1); sim.step()
        sim.poke("en", 0); sim.poke("d", 0)
        for _ in range(3):
            sim.step()
            assert str(sim.peek_bit("q")) == "1"  # kept
        sim.poke("en", 1); sim.step(); sim.step()
        assert str(sim.peek_bit("q")) == "0"

    def test_register_chain_delays(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
            SIGNAL r1, r2, r3: REG;
            BEGIN
                r1(d, r2.in);
                r2(*, r3.in);
                r3(*, q)
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        pattern = [1, 0, 1, 1, 0, 0, 1]
        seen = []
        for bit in pattern + [0, 0, 0]:
            sim.poke("d", bit)
            sim.step()
            seen.append(str(sim.peek_bit("q")))
        assert seen[3:3 + len(pattern)] == [str(b) for b in pattern]

    def test_reset_state_clears_registers(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN r(d, q) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("d", 1); sim.step(); sim.step()
        assert str(sim.peek_bit("q")) == "1"
        sim.reset_state()
        sim.step()
        assert str(sim.peek_bit("q")) == "UNDEF"

    def test_registers_listing(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN r(d, q) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("d", 1); sim.step()
        assert sim.registers() == {"u.r": Logic.ONE}


class TestConditionalSemantics:
    def test_if_guard_false_gives_noinfl(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c, a: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c THEN z := a END;
                y := c
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("c", 0); sim.poke("a", 1); sim.step()
        assert sim.peek("z")[0] is Logic.NOINFL
        sim.poke("c", 1); sim.step()
        assert sim.peek("z")[0] is Logic.ONE

    def test_undef_guard_gives_undef(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c, a: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c THEN z := a END;
                y := c
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)  # c stays UNDEF
        sim.step()
        assert sim.peek("z")[0] is Logic.UNDEF

    def test_elsif_chain_exclusive(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN s1, s2: boolean; OUT y: boolean) IS
            BEGIN
                IF s1 THEN y := 1
                ELSIF s2 THEN y := 0
                ELSE y := s2
                END
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        for s1, s2, want in [(1, 0, "1"), (1, 1, "1"), (0, 1, "0"), (0, 0, "0")]:
            sim.poke("s1", s1); sim.poke("s2", s2); sim.step()
            assert str(sim.peek_bit("y")) == want

    def test_multi_driver_strict_raises(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c1, c2: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c1 THEN z := 1 END;
                IF c2 THEN z := 0 END;
                y := c1
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("c1", 1); sim.poke("c2", 1)
        with pytest.raises(SimulationError, match="burn"):
            sim.step()

    def test_multi_driver_lenient_records(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c1, c2: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c1 THEN z := 1 END;
                IF c2 THEN z := 0 END;
                y := c1
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(strict=False)
        sim.poke("c1", 1); sim.poke("c2", 1)
        sim.step()
        assert len(sim.violations) == 1
        assert "z" in sim.violations[0].net

    def test_exclusive_drivers_no_violation(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN c: boolean; OUT y: boolean; z: multiplex) IS
            BEGIN
                IF c THEN z := 1 END;
                IF NOT c THEN z := 0 END;
                y := c
            END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        for c in (0, 1):
            sim.poke("c", c); sim.step()
            assert str(sim.peek("z")[0]) == str(c)
        assert not sim.violations


class TestPokePeek:
    def test_poke_int_multibit(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        sim.poke("a", 1); sim.poke("b", "1")
        sim.step()
        assert str(sim.peek_bit("cout")) == "1"

    def test_poke_bad_width(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        with pytest.raises(ValueError):
            sim.poke("a", [1, 0])

    def test_poke_bad_bit(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        with pytest.raises(ValueError):
            sim.poke("a", 2)

    def test_unknown_path(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        with pytest.raises(KeyError):
            sim.peek("nonexistent")

    def test_unpoke_releases(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        sim.poke("a", 1); sim.poke("b", 1); sim.step()
        sim.unpoke("b")
        sim.step()
        assert str(sim.peek_bit("cout")) == "UNDEF"

    def test_qualified_and_relative_paths(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        sim.poke("h.a", 1); sim.poke("b", 1)
        sim.step()
        assert str(sim.peek_bit("h.cout")) == "1"

    def test_peek_internal_signal(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s: boolean;
            BEGIN s := NOT a; y := NOT s END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        sim.poke("a", 1)
        sim.step()
        assert str(sim.peek_bit("u.s")) == "0"


class TestStatementOrderIrrelevance:
    """Section 4: 'the relative order of statements does not influence the
    semantics of a Zeus program'."""

    @given(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
    @settings(max_examples=8, deadline=None)
    def test_permuted_bodies_agree(self, a, b, c):
        stmts = [
            "s1 := AND(a, b)",
            "s2 := OR(s1, c)",
            "y := XOR(s2, a)",
        ]
        import itertools

        results = set()
        for perm in itertools.permutations(stmts):
            circuit = compile_ok(
                """
                TYPE t = COMPONENT (IN a, b, c: boolean; OUT y: boolean) IS
                SIGNAL s1, s2: boolean;
                BEGIN
                    %s
                END;
                SIGNAL u: t;
                """
                % ";\n".join(perm)
            )
            sim = circuit.simulator()
            sim.poke("a", a); sim.poke("b", b); sim.poke("c", c)
            sim.step()
            results.add(str(sim.peek_bit("y")))
        assert len(results) == 1


class TestAdderProperties:
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_ripple_adder_adds(self, a, b, cin):
        from repro.stdlib import programs

        circuit = _cached_adder()
        sim = circuit.simulator()
        sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
        sim.step()
        assert sim.peek_int("s") + 256 * int(sim.peek_bit("cout")) == a + b + cin


_ADDER_CACHE = []


def _cached_adder():
    if not _ADDER_CACHE:
        from repro.stdlib import programs

        _ADDER_CACHE.append(
            compile_ok(programs.ripple_carry(8), top="adder")
        )
    return _ADDER_CACHE[0]


class TestResetState:
    SRC = """
    TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
    BEGIN r(d, q); END;
    SIGNAL u: t;
    """

    def test_reset_state_clears_signal_values(self):
        sim = compile_ok(self.SRC).simulator()
        sim.poke("d", 1); sim.step()
        assert str(sim.peek_bit("d")) == "1"
        sim.reset_state()
        # peek must not report values from the previous run.
        assert str(sim.peek_bit("d")) == "UNDEF"
        assert str(sim.peek_bit("q")) == "UNDEF"

    def test_reset_state_drops_pokes(self):
        sim = compile_ok(self.SRC).simulator()
        sim.poke("d", 1); sim.step(2)
        assert str(sim.peek_bit("q")) == "1"
        sim.reset_state()
        # The old d=1 poke must not leak into the fresh run.
        sim.step(2)
        assert str(sim.peek_bit("q")) == "UNDEF"
        # Re-poking after the reset works as on a fresh simulator.
        sim.poke("d", 1); sim.step(2)
        assert str(sim.peek_bit("q")) == "1"


class TestMultiBitEqual:
    SRC = """
    TYPE t = COMPONENT (IN sel: boolean; OUT y: boolean) IS
    SIGNAL a, b: ARRAY [1..2] OF multiplex;
    BEGIN
        a[1] := 1;
        b[1] := 0;
        IF sel THEN a[2] := 1; b[2] := 1 END;
        y := EQUAL(a, b)
    END;
    SIGNAL u: t;
    """

    @pytest.mark.parametrize("engine", ["levelized", "dataflow"])
    def test_fires_zero_on_partial_mismatch(self, engine):
        # Bit 1 differs (1 vs 0) while bit 2 is undefined when sel is
        # not driven: the comparison is already settled to ZERO.
        sim = compile_ok(self.SRC).simulator(engine=engine)
        sim.step()
        assert str(sim.peek_bit("y")) == "0"

    @pytest.mark.parametrize("engine", ["levelized", "dataflow"])
    def test_equal_bits_stay_undef_until_defined(self, engine):
        src = self.SRC.replace("b[1] := 0", "b[1] := 1")
        sim = compile_ok(src).simulator(engine=engine)
        sim.step()
        # Bits agree where defined but bit 2 is undefined: UNDEF.
        assert str(sim.peek_bit("y")) == "UNDEF"
        sim.poke("sel", 1); sim.step()
        assert str(sim.peek_bit("y")) == "1"


class TestNetsOfCache:
    def test_cache_reused(self, halfadder_circuit):
        sim = halfadder_circuit.simulator()
        first = sim.nets_of("a")
        assert sim.nets_of("a") is first
        # Qualified and relative paths cache independently but resolve
        # to the same nets.
        assert sim.nets_of("h.a") == first

    def test_cache_shared_with_trace(self, halfadder_circuit):
        from repro.core.trace import Trace

        sim = halfadder_circuit.simulator()
        trace = Trace(["a", "s"])
        sim.attach_trace(trace)
        assert sim.nets_of("a") is sim._path_cache["a"]
