"""The reusable Zeus block library (stdlib.library)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.stdlib import library

_CACHE = {}


def block(name, *args):
    key = (name, args)
    if key not in _CACHE:
        builder = library.BLOCKS[name] if name in library.BLOCKS else getattr(library, name)
        _CACHE[key] = repro.compile_text(builder(*args))
    return _CACHE[key]


class TestDecoder:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_one_hot(self, n):
        sim = block("decoder", n).simulator()
        for a in range(1 << n):
            sim.poke("a", a)
            sim.step()
            lines = [str(sim.peek_bit(f"line[{i}]")) for i in range(1 << n)]
            assert lines == ["1" if i == a else "0" for i in range(1 << n)]


class TestEncoder:
    def test_inverse_of_decoder(self):
        sim = block("encoder", 3).simulator()
        for i in range(8):
            sim.poke("line", [1 if j == i else 0 for j in range(8)])
            sim.step()
            assert sim.peek_int("a") == i
            assert str(sim.peek_bit("valid")) == "1"

    def test_priority(self):
        sim = block("encoder", 3).simulator()
        sim.poke("line", [1, 0, 1, 0, 0, 0, 1, 0])
        sim.step()
        assert sim.peek_int("a") == 6  # highest line wins

    def test_invalid_when_no_line(self):
        sim = block("encoder", 3).simulator()
        sim.poke("line", [0] * 8)
        sim.step()
        assert str(sim.peek_bit("valid")) != "1"


class TestMuxN:
    def test_selects_word(self):
        circuit = repro.compile_text(library.muxn(4, 8))
        sim = circuit.simulator()
        words = [17, 42, 99, 200]
        for i, w in enumerate(words):
            sim.poke(f"d[{i}]", w)
        for sel, want in enumerate(words):
            sim.poke("sel", sel)
            sim.step()
            assert sim.peek_int("y") == want


class TestCounter:
    def test_counts_modulo(self):
        sim = block("counter", 3).simulator()
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1)
        seen = []
        for _ in range(10):
            sim.step()
            seen.append(sim.peek_int("count"))
        assert seen == [(t % 8) for t in range(10)]

    def test_enable_freezes(self):
        sim = block("counter", 3).simulator()
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1)
        sim.step(3)
        sim.poke("en", 0)
        sim.step(4)
        # Three enabled cycles latched increments to 3; disabling holds it.
        assert sim.peek_int("count") == 3

    def test_carry_at_maximum(self):
        sim = block("counter", 2).simulator()
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1)
        carries = []
        for _ in range(8):
            sim.step()
            carries.append(str(sim.peek_bit("carry")))
        # count visits 0,1,2,3,0,1,2,3 -> carry on the 3s.
        assert carries == ["0", "0", "0", "1"] * 2


class TestShiftReg:
    def test_serial_to_parallel(self):
        sim = block("shiftreg", 4).simulator()
        pattern = [1, 0, 1, 1]
        sim.poke("en", 1)
        for bit in pattern:
            sim.poke("din", bit)
            sim.step()
        sim.step()
        # q[1] holds the most recent bit.
        got = [str(b) for b in sim.peek("q")]
        assert got == [str(b) for b in reversed(pattern)]

    def test_disabled_holds(self):
        sim = block("shiftreg", 4).simulator()
        sim.poke("en", 1); sim.poke("din", 1)
        sim.step(4)
        sim.poke("en", 0); sim.poke("din", 0)
        sim.step(3)
        assert sim.peek_int("q") == 15


class TestParity:
    @given(st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_matches_popcount(self, value):
        sim = block("parity", 8).simulator()
        sim.poke("a", value)
        sim.step()
        assert str(sim.peek_bit("odd1")) == str(bin(value).count("1") % 2)


class TestComparator:
    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=25, deadline=None)
    def test_trichotomy(self, a, b):
        sim = block("comparator", 4).simulator()
        sim.poke("a", a); sim.poke("b", b)
        sim.step()
        flags = (
            str(sim.peek_bit("eq")),
            str(sim.peek_bit("ltu")),
            str(sim.peek_bit("gtu")),
        )
        want = (str(int(a == b)), str(int(a < b)), str(int(a > b)))
        assert flags == want


class TestLfsr:
    def test_maximal_period_n4(self):
        """Taps (4, 3) give the maximal 2^4 - 1 sequence."""
        sim = block("lfsr", 4).simulator()
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1)
        seen = []
        for _ in range(16):
            sim.step()
            seen.append(sim.peek_int("state"))
        assert len(set(seen[:15])) == 15
        assert 0 not in seen
        assert seen[15] == seen[0]

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            library.lfsr(1)
