// Structural Verilog emitted by zeus (zeus.interchange/1)
// design: fig
module fig_mod (a, b, c, x, y, rin, rout, out, CLK);
  input a;
  input b;
  input c;
  input x;
  input y;
  input rin;
  output rout;
  inout out;
  input CLK;

  wire a;
  wire b;
  wire c;
  wire x;
  wire y;
  wire rin;
  wire rout;
  tri out;
  wire _and0;
  wire _not1;
  wire _not2;
  wire r_in;
  wire r_out;

  and (_and0, a, b);
  not (_not1, x);
  not (_not2, y);
  bufif1 (out, _and0, x);
  bufif1 (out, c, y);
  buf (r_in, rin);
  buf (rout, r_out);
  zeus_dff r (.q(r_out), .d(r_in), .ck(CLK));
endmodule

module zeus_dff (q, d, ck);
  output reg q;
  input d, ck;
  initial q = 1'bx;
  always @(posedge ck)
    if (d !== 1'bz) q <= d;
endmodule
