"""The systolic sorter and FIR extension circuits ("Both Hades and Zeus
are suitable for describing systolic algorithms", section 1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.stdlib import extras

_CACHE = {}


def circuit(name, builder=None, *args):
    key = (name, args)
    if key not in _CACHE:
        text = builder(*args) if builder else extras.EXTRA_PROGRAMS[name]
        _CACHE[key] = repro.compile_text(text)
    return _CACHE[key]


class TestSorter:
    def run(self, values, n=4, w=4):
        sim = circuit("sorter", extras.sorter, n, w).simulator()
        for i, v in enumerate(values):
            sim.poke(f"din[{i + 1}]", v)
        sim.step()
        return [sim.peek_int(f"dout[{i + 1}]") for i in range(n)]

    @given(st.lists(st.integers(0, 15), min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_sorts(self, values):
        assert self.run(values) == sorted(values)

    def test_duplicates(self):
        assert self.run([7, 7, 7, 7]) == [7, 7, 7, 7]

    def test_reverse_worst_case(self):
        assert self.run([15, 12, 5, 0]) == [0, 5, 12, 15]

    def test_larger_network(self):
        values = [random.Random(2).randrange(16) for _ in range(6)]
        sim = circuit("sorter6", extras.sorter, 6, 4).simulator()
        for i, v in enumerate(values):
            sim.poke(f"din[{i + 1}]", v)
        sim.step()
        got = [sim.peek_int(f"dout[{i + 1}]") for i in range(6)]
        assert got == sorted(values)

    def test_network_is_combinational(self):
        assert circuit("sorter", extras.sorter, 4, 4).stats()["registers"] == 0


class TestFir:
    def run(self, coef, xs, w=8):
        taps = len(coef)
        sim = circuit("fir", extras.fir, taps, w).simulator()
        sim.poke("RSET", 1); sim.poke("x", 0); sim.poke("coef", coef)
        sim.step()
        sim.poke("RSET", 0)
        outs = []
        for x in xs:
            sim.poke("x", x)
            sim.step()
            outs.append(sim.peek_int("y"))
        return outs

    def golden(self, coef, xs, w=8):
        out = []
        for t in range(len(xs)):
            total = 0
            for j in range(1, len(coef) + 1):
                if t - j >= 0:
                    total += coef[j - 1] * xs[t - j]
            out.append(total % (1 << w))
        return out

    def test_impulse_response(self):
        coef = [1, 0, 1, 1]
        xs = [1] + [0] * 7
        # The impulse appears at delays 1..taps where coef is 1.
        assert self.run(coef, xs) == [0, 1, 0, 1, 1, 0, 0, 0]

    def test_step_response(self):
        coef = [1, 1, 1, 1]
        xs = [1] * 8
        assert self.run(coef, xs) == [0, 1, 2, 3, 4, 4, 4, 4]

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=4),
        st.lists(st.integers(0, 9), min_size=6, max_size=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_streams_match_golden(self, coef, xs):
        assert self.run(coef, xs) == self.golden(coef, xs)

    def test_register_inventory(self):
        # taps x width partial-sum registers.
        assert circuit("fir", extras.fir, 4, 8).stats()["registers"] == 32
