"""zeusprove tests: the shared solver core, BMC + k-induction,
sequential equivalence, counterexample replay, and the zeus.proof/1
schema.

The differential discipline under test (satellite of ISSUE 4): every
COUNTEREXAMPLE must replay to a real simulator violation/mismatch, and
every PROVED verdict must survive exhaustive co-simulation on small
interfaces.
"""

import itertools
import json

import pytest

import repro
from repro.analysis import exhaustive_equivalent
from repro.core.values import GATE_FUNCTIONS, Logic
from repro.formal import (
    FormalConfig,
    apply_op,
    check_equivalence,
    eval_expr,
    prove,
    solve,
    validate_proof_report,
    write_proof_report,
)
from repro.stdlib.programs import ALL_PROGRAMS


def compile_lenient(text, name="t", top=None):
    return repro.compile_text(text, top=top, name=name, strict=False)


def conflict_program(n_guards):
    """Independent guards on one multiplex net: conflicting whenever
    two of them are 1 (same shape as the lint/fuzz corpus)."""
    ins = ", ".join(f"g{k}" for k in range(n_guards))
    stmts = "\n".join(
        f"    IF g{k} THEN z := {k % 2} END;" for k in range(n_guards)
    )
    return f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
{stmts}
    y := g0
END;
SIGNAL u: t;
"""


EXCLUSIVE_NOT = """
TYPE t = COMPONENT (IN s: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF s THEN z := 1 END;
    IF NOT s THEN z := 0 END;
    y := s
END;
SIGNAL u: t;
"""

TAUTOLOGY = """
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN
    y := OR(a, NOT a)
END;
SIGNAL u: t;
"""

WIRE = """
TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
BEGIN
    q := d
END;
SIGNAL u: t;
"""

REGGED = """
TYPE t = COMPONENT (IN d: boolean; OUT q: boolean) IS
SIGNAL r: REG;
BEGIN
    r(d, q)
END;
SIGNAL u: t;
"""

OR2 = """
TYPE t = COMPONENT (IN a, b: boolean; OUT z: boolean) IS
BEGIN
    z := OR(a, b)
END;
SIGNAL u: t;
"""

#: OR(a, b) written as a sum of products: equivalent but structurally
#: different, so the proof needs actual solver decisions.
OR2_SOP = """
TYPE t = COMPONENT (IN a, b: boolean; OUT z: boolean) IS
BEGIN
    z := OR(AND(a, b), OR(AND(a, NOT b), AND(NOT a, b)))
END;
SIGNAL u: t;
"""

AND2 = OR2.replace("OR(a, b)", "AND(a, b)")


# ---------------------------------------------------------------------------
# The shared solver core.
# ---------------------------------------------------------------------------


_LOGIC_TO_VAL = {Logic.ZERO: 0, Logic.ONE: 1, Logic.UNDEF: "U",
                 Logic.NOINFL: "Z"}


class TestSharedGateTable:
    """One four-valued gate table for the simulator, the lint prover
    and zeusprove (the dedupe satellite): the solver's apply_op must
    agree with a real single-gate simulation on the full lattice."""

    @pytest.mark.parametrize("op", ["AND", "OR", "NAND", "NOR", "XOR"])
    def test_binary_ops_match_simulator(self, op):
        src = OR2.replace("OR(a, b)", f"{op}(a, b)")
        circuit = compile_lenient(src, name=f"g{op.lower()}")
        for x, y in itertools.product(Logic, Logic):
            sim = circuit.simulator(strict=False)
            sim.poke("a", [x])
            sim.poke("b", [y])
            sim.step()
            got = sim.peek("z")[0]
            # Gate inputs read through the implicit amplifier.
            vals = (_LOGIC_TO_VAL[x.to_boolean()], _LOGIC_TO_VAL[y.to_boolean()])
            want = apply_op(op, vals)
            assert _LOGIC_TO_VAL[got] == want, (op, x, y)

    def test_not_matches_simulator(self):
        src = WIRE.replace("q := d", "q := NOT d")
        circuit = compile_lenient(src, name="gnot")
        for x in Logic:
            sim = circuit.simulator(strict=False)
            sim.poke("d", [x])
            sim.step()
            got = sim.peek("q")[0]
            want = apply_op("NOT", (_LOGIC_TO_VAL[x.to_boolean()],))
            assert _LOGIC_TO_VAL[got] == want, x

    def test_apply_op_agrees_with_values_table(self):
        conv = {0: Logic.ZERO, 1: Logic.ONE, "U": Logic.UNDEF,
                "Z": Logic.NOINFL}
        for op, fn in GATE_FUNCTIONS.items():
            for vals in itertools.product((0, 1, "U"), repeat=2):
                want = fn([conv[v] for v in vals])
                assert apply_op(op, vals) == _LOGIC_TO_VAL[want], (op, vals)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            apply_op("FROB", (0, 1))


class TestSolver:
    def test_contradiction_unsat(self):
        a = ("var", "a")
        contradiction = ("gate", "AND", (a, ("gate", "NOT", (a,))))
        assert solve((contradiction,), support=("a",)) is None

    def test_witness_found_and_partial(self):
        target = ("gate", "OR", (("var", "a"), ("var", "b")))
        witness = solve((target,), support=("a", "b"))
        assert witness is not None
        assert eval_expr(target, witness) == 1

    def test_blockers_block(self):
        a = ("var", "a")
        # target a=1 while blocking a=1: unsatisfiable.
        assert solve((a,), blockers=(a,), support=("a",)) is None

    def test_lint_prover_runs_on_shared_core(self):
        import repro.formal.solver as solver
        import repro.lint.prover as prover

        assert prover.ConeBuilder is solver.ConeBuilder
        assert prover.eval_expr is solver.eval_expr


# ---------------------------------------------------------------------------
# Bounded model checking.
# ---------------------------------------------------------------------------


class TestProve:
    def test_conflict_refuted_and_replayed(self):
        report = prove(compile_lenient(conflict_program(2)),
                       ["no-conflict"])
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed
        assert "driven by" in r.counterexample.replay_detail
        assert report.exit_code() == 2

    def test_exclusive_guards_proved(self):
        report = prove(compile_lenient(EXCLUSIVE_NOT), ["no-conflict"])
        (r,) = report.results
        assert r.verdict == "proved"
        assert r.method == "combinational"
        assert report.exit_code() == 0

    def test_out_defined_proved(self):
        report = prove(compile_lenient(TAUTOLOGY), ["out-defined:y"])
        assert report.results[0].verdict == "proved"

    def test_out_defined_refuted_on_floating_multiplex(self):
        # The internal multiplex floats when s = 0, and the amplifier
        # turns that into UNDEF on the OUT pin.
        src = """
TYPE t = COMPONENT (IN s: boolean; OUT y: boolean) IS
SIGNAL z: multiplex;
BEGIN
    IF s THEN z := 1 END;
    y := z
END;
SIGNAL u: t;
"""
        report = prove(compile_lenient(src), ["out-defined:y"])
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed

    def test_assert_proved_for_tautology(self):
        report = prove(compile_lenient(TAUTOLOGY), ["assert:u.y"])
        assert report.results[0].verdict == "proved"

    def test_assert_refuted_with_stimulus(self):
        report = prove(compile_lenient(WIRE), ["assert:u.q"])
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed
        # The stimulus is a full primary-input trace.
        assert all("d" in frame for frame in r.counterexample.frames)

    def test_register_undef_at_cycle_zero(self):
        report = prove(compile_lenient(REGGED), ["out-defined:q"])
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.cycle == 0
        assert r.counterexample.replay_confirmed

    def test_k_induction_closes_sequential_no_conflict(self):
        report = prove(compile_lenient(REGGED), ["no-conflict"])
        (r,) = report.results
        assert r.verdict == "proved"
        assert r.method in ("k-induction", "combinational")

    def test_default_properties_cover_out_pins(self):
        # z is a multiplex pin (INOUT), so only y is a default
        # out-defined obligation.
        report = prove(compile_lenient(EXCLUSIVE_NOT))
        assert {r.prop for r in report.results} == {
            "no-conflict", "out-defined:y"}

    def test_bad_property_rejected(self):
        circuit = compile_lenient(TAUTOLOGY)
        with pytest.raises(ValueError):
            prove(circuit, ["frobnicate"])
        with pytest.raises(ValueError):
            prove(circuit, ["out-defined:nope"])

    def test_budget_exhaustion_reports_unknown(self):
        report = prove(compile_lenient(conflict_program(6)),
                       ["no-conflict"], FormalConfig(budget=1))
        (r,) = report.results
        assert r.verdict == "unknown"
        assert "budget" in r.reason
        assert report.stats.budget_exhausted
        assert report.exit_code() == 0
        assert report.exit_code(werror=True) == 1

    def test_blackjack_smoke(self):
        circuit = compile_lenient(
            ALL_PROGRAMS["blackjack"], name="blackjack")
        report = prove(circuit, ["no-conflict"],
                       FormalConfig(depth=1, budget=20_000,
                                    induction=False))
        assert report.results[0].verdict in ("proved", "unknown")
        assert report.stats.sat_calls > 0


# ---------------------------------------------------------------------------
# Sequential equivalence.
# ---------------------------------------------------------------------------


class TestEquiv:
    def test_paper_adders_proved_equivalent(self):
        a = compile_lenient(ALL_PROGRAMS["adders"], top="adder4")
        b = compile_lenient(ALL_PROGRAMS["adders"], top="adder")
        report = check_equivalence(a, b)
        assert report.verdict == "proved"
        assert "PROVED-EQUIVALENT" in report.render_text()

    def test_paper_trees_proved_equivalent(self):
        a = compile_lenient(ALL_PROGRAMS["trees"], top="a")
        b = compile_lenient(ALL_PROGRAMS["trees"], top="b")
        report = check_equivalence(a, b)
        assert report.verdict == "proved"

    def test_structurally_different_equivalent_pair(self):
        report = check_equivalence(compile_lenient(OR2),
                                   compile_lenient(OR2_SOP))
        assert report.verdict == "proved"
        # Not a structural-identity freebie: the solver had to decide.
        assert report.stats.decisions > 0

    def test_inequivalent_pair_refuted_and_replayed(self):
        report = check_equivalence(compile_lenient(OR2),
                                   compile_lenient(AND2))
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed
        assert "differs" in r.counterexample.replay_detail
        assert report.exit_code() == 2

    def test_sequential_mismatch_at_cycle_zero(self):
        # A wire and a one-cycle register differ as soon as the register
        # still holds its UNDEF reset value.
        report = check_equivalence(compile_lenient(WIRE),
                                   compile_lenient(REGGED))
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed

    def test_sequential_self_equivalence(self):
        report = check_equivalence(compile_lenient(REGGED, name="x"),
                                   compile_lenient(REGGED, name="y"))
        assert report.verdict == "proved"

    def test_interface_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_equivalence(compile_lenient(OR2),
                              compile_lenient(WIRE))


class TestProvedSurvivesCosim:
    """Satellite 3: PROVED equivalences must agree with exhaustive
    co-simulation over every defined input vector (<= 12 input bits)."""

    PAIRS = [
        ("adders", "adder4", "adder", 2),
        ("trees", "a", "b", 1),
    ]

    @pytest.mark.parametrize("prog,top_a,top_b,cycles", PAIRS)
    def test_paper_pairs(self, prog, top_a, top_b, cycles):
        a = compile_lenient(ALL_PROGRAMS[prog], top=top_a, name="a")
        b = compile_lenient(ALL_PROGRAMS[prog], top=top_b, name="b")
        formal = check_equivalence(a, b)
        assert formal.verdict == "proved"
        bits = sum(len(p.nets) for p in a.netlist.ports if p.mode == "IN")
        assert bits <= 12
        sampled = exhaustive_equivalent(a, b, cycles=cycles)
        assert sampled.equivalent

    def test_proved_out_defined_survives_exhaustive_sim(self):
        circuit = compile_lenient(TAUTOLOGY)
        report = prove(circuit, ["out-defined:y"])
        assert report.results[0].verdict == "proved"
        for bit in (0, 1):
            sim = circuit.simulator(strict=False)
            sim.poke("a", bit)
            sim.step()
            assert all(v.is_defined for v in sim.peek("y"))

    @pytest.mark.parametrize("n_guards", [2, 3, 4])
    def test_fuzz_conflicts_always_replay(self, n_guards):
        report = prove(compile_lenient(conflict_program(n_guards)),
                       ["no-conflict"])
        (r,) = report.results
        assert r.verdict == "counterexample"
        assert r.counterexample.replay_confirmed


# ---------------------------------------------------------------------------
# The zeus.proof/1 schema.
# ---------------------------------------------------------------------------


class TestProofSchema:
    def test_roundtrip_validates(self, tmp_path):
        report = prove(compile_lenient(conflict_program(2)),
                       ["no-conflict"])
        path = tmp_path / "proof.json"
        write_proof_report(str(path), report)
        data = json.loads(path.read_text())
        validate_proof_report(data)
        assert data["schema"] == "zeus.proof/1"
        assert data["verdict"] == "counterexample"
        assert data["solver"]["clauses"] > 0
        (result,) = data["results"]
        assert result["counterexample"]["replay"]["confirmed"] is True

    def test_validator_rejects_tampering(self):
        report = prove(compile_lenient(EXCLUSIVE_NOT),
                       ["no-conflict"]).to_dict()
        validate_proof_report(report)
        for breakage in (
            {"schema": "zeus.proof/9"},
            {"mode": "divine"},
            {"verdict": "maybe"},
            {"solver": {}},
        ):
            broken = {**report, **breakage}
            with pytest.raises(ValueError):
                validate_proof_report(broken)

    def test_metrics_formal_section(self):
        from repro.obs import metrics_report, validate_report

        formal = prove(compile_lenient(EXCLUSIVE_NOT), ["no-conflict"])
        circuit = compile_lenient(EXCLUSIVE_NOT)
        report = metrics_report(circuit, formal=formal)
        validate_report(report)
        assert report["formal"]["mode"] == "prove"
        assert report["formal"]["verdict"] == "proved"
        assert report["formal"]["solver"]["clauses"] == formal.clauses

    def test_formal_span_recorded(self):
        from repro.obs import spans as _spans

        registry = _spans.REGISTRY
        registry.reset()
        prove(compile_lenient(EXCLUSIVE_NOT), ["no-conflict"])
        assert any(s.name == "formal" for s in registry.spans)
