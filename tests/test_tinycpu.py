"""The TINYCPU extension: a complete accumulator computer in Zeus."""

import pytest

import repro
from repro.stdlib import extras
from repro.testbench import Testbench

_CIRCUIT = []


def cpu_testbench():
    if not _CIRCUIT:
        _CIRCUIT.append(repro.compile_text(extras.TINYCPU))
    return Testbench(_CIRCUIT[0])


def run_program(listing, max_cycles=300):
    tb = cpu_testbench()
    words = extras.assemble(listing)
    tb.reset(cycles=1, iload=0, iaddr=0, idata=0)
    for addr, word in enumerate(words):
        tb.drive(iload=1, iaddr=addr, idata=word).clock()
    tb.drive(iload=0)
    for _ in range(max_cycles):
        tb.clock()
        if str(tb.sim.peek_bit("halted")) == "1":
            return tb
    raise AssertionError("program did not halt")


class TestAssembler:
    def test_encoding(self):
        assert extras.assemble("LDI 5\nHLT") == [0x15, 0x80]

    def test_comments_and_blanks(self):
        assert extras.assemble("""
        LDI 3   ; load
                 ; nothing
        HLT
        """) == [0x13, 0x80]

    def test_operand_range(self):
        with pytest.raises(ValueError):
            extras.assemble("LDI 16")

    def test_program_size_limit(self):
        with pytest.raises(ValueError):
            extras.assemble("\n".join(["NOP"] * 17))


class TestPrograms:
    def test_immediate_and_halt(self):
        tb = run_program("LDI 7\nHLT")
        assert tb.peek_int("accout") == 7

    def test_store_load_roundtrip(self):
        tb = run_program("""
        LDI 9
        STA 3
        LDI 0
        LDA 3
        HLT
        """)
        assert tb.peek_int("accout") == 9

    def test_arithmetic(self):
        tb = run_program("""
        LDI 6
        STA 0
        LDI 13
        ADD 0      ; 13 + 6
        STA 1
        SUB 0      ; 19 - 6
        HLT
        """)
        assert tb.peek_int("accout") == 13
        assert tb.peek_int("cpu.dmem[1].out") == 19

    def test_unconditional_jump_skips(self):
        tb = run_program("""
        LDI 1
        JMP 3
        LDI 15     ; skipped
        HLT
        """)
        assert tb.peek_int("accout") == 1

    def test_countdown_loop_sums_1_to_5(self):
        tb = run_program("""
        LDI 1
        STA 15     ; constant one
        LDI 5
        STA 0      ; counter = 5
        LDI 0
        STA 1      ; total = 0
        LDA 1      ; loop:
        ADD 0
        STA 1
        LDA 0
        SUB 15
        STA 0
        JNZ 6
        LDA 1
        HLT
        """)
        assert tb.peek_int("accout") == 15  # 5+4+3+2+1

    def test_multiply_by_repeated_addition(self):
        # 16 words exactly: the loop counter rides in the accumulator.
        tb = run_program("""
        LDI 1
        STA 15     ; constant one
        LDI 6
        STA 0      ; multiplicand
        LDI 0
        STA 1      ; product = 0
        LDI 4      ; counter in acc
        STA 2      ; 7: loop entry (counter arrives in acc)
        LDA 1
        ADD 0
        STA 1      ; product += multiplicand
        LDA 2
        SUB 15     ; counter - 1 (left in acc for the jump)
        JNZ 7
        LDA 1
        HLT
        """)
        assert tb.peek_int("accout") == 24  # 6 * 4

    def test_modular_wraparound(self):
        tb = run_program("""
        LDI 15
        STA 0
        LDI 15
        ADD 0
        ADD 0      ; 45 > 8 bits? no: 45 fits; test 8-bit wrap via loop
        HLT
        """)
        assert tb.peek_int("accout") == 45

    def test_reset_restarts(self):
        tb = run_program("LDI 3\nHLT")
        assert str(tb.sim.peek_bit("halted")) == "1"
        tb.reset(cycles=1, iload=0, iaddr=0, idata=0)
        tb.clock(4)
        # After reset the stored program reruns from pc 0.
        assert str(tb.sim.peek_bit("halted")) == "1"
        assert tb.peek_int("accout") == 3


class TestStructure:
    def test_register_inventory(self):
        tb = cpu_testbench()
        stats = tb.circuit.stats()
        # pc 4 + acc 8 + halt 1 + imem 128 + dmem 128.
        assert stats["registers"] == 269

    def test_pc_visible(self):
        tb = run_program("NOP\nNOP\nHLT")
        assert tb.peek_int("pcout") is not None
