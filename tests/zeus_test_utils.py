"""Shared helper functions for the Zeus reproduction test suite."""

from __future__ import annotations

import repro
from repro.core.values import Logic


def compile_ok(text: str, top: str | None = None) -> repro.Circuit:
    """Compile, asserting no check errors."""
    circuit = repro.compile_text(text, top=top)
    assert not circuit.diagnostics.has_errors(), circuit.diagnostics.render()
    return circuit


def bits_to_int(bits: list[Logic]) -> int | None:
    from repro.core.values import num_of

    return num_of(bits)


def poke_all(sim, **values) -> None:
    for name, value in values.items():
        sim.poke(name, value)


def step_and_peek_bit(sim, path: str) -> str:
    sim.step()
    return str(sim.peek_bit(path))


#: A tiny wrapper making "expression test" components terse: the body is a
#: single assignment ``y := <expr>`` over declared single-bit inputs.
def expr_circuit(expr: str, inputs: list[str], extra: str = "") -> repro.Circuit:
    ins = ", ".join(inputs)
    return compile_ok(
        f"""
        {extra}
        TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean) IS
        BEGIN
            y := {expr}
        END;
        SIGNAL u: t;
        """
    )


def eval_expr(expr: str, **inputs: int) -> str:
    """Evaluate a 1-bit Zeus expression over 1-bit inputs; returns the
    output as a string ('0', '1', 'UNDEF', 'NOINFL')."""
    circuit = expr_circuit(expr, sorted(inputs))
    sim = circuit.simulator()
    for name, value in inputs.items():
        sim.poke(name, value)
    sim.step()
    return str(sim.peek_bit("y"))
