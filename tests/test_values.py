"""Four-valued logic domain tests (sections 3.3 and 8), including
property-based tests of the gate and resolution rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.values import (
    GATE_FUNCTIONS,
    Logic,
    MultipleDriverError,
    and_gate,
    bits_of,
    equal_gate,
    nand_gate,
    nor_gate,
    not_gate,
    num_of,
    or_gate,
    resolve,
    xor_gate,
)

L = Logic
logic_values = st.sampled_from(list(Logic))
defined = st.sampled_from([L.ZERO, L.ONE])
maybe_unknown = st.sampled_from([L.ZERO, L.ONE, L.UNDEF, None])


class TestBasics:
    def test_names_roundtrip(self):
        for v in Logic:
            assert Logic.from_name(str(v)) is v

    def test_from_bit(self):
        assert Logic.from_bit(0) is L.ZERO
        assert Logic.from_bit(1) is L.ONE
        with pytest.raises(ValueError):
            Logic.from_bit(2)

    def test_is_defined(self):
        assert L.ZERO.is_defined and L.ONE.is_defined
        assert not L.UNDEF.is_defined and not L.NOINFL.is_defined

    def test_to_boolean_converts_noinfl(self):
        assert L.NOINFL.to_boolean() is L.UNDEF
        for v in (L.ZERO, L.ONE, L.UNDEF):
            assert v.to_boolean() is v


class TestResolution:
    def test_all_noinfl(self):
        assert resolve([L.NOINFL, L.NOINFL]) is L.NOINFL

    def test_empty(self):
        assert resolve([]) is L.NOINFL

    def test_single_driver_wins(self):
        assert resolve([L.NOINFL, L.ONE, L.NOINFL]) is L.ONE
        assert resolve([L.ZERO]) is L.ZERO
        assert resolve([L.UNDEF, L.NOINFL]) is L.UNDEF

    def test_conflict_strict_raises(self):
        with pytest.raises(MultipleDriverError):
            resolve([L.ZERO, L.ONE])

    def test_conflict_lenient_undef(self):
        assert resolve([L.ZERO, L.ONE], strict=False) is L.UNDEF

    def test_double_undef_is_conflict(self):
        # "If x is assigned several times 0, 1 or UNDEF ..." -- UNDEF counts.
        with pytest.raises(MultipleDriverError):
            resolve([L.UNDEF, L.UNDEF])

    @given(st.lists(logic_values, max_size=6))
    def test_lenient_never_raises(self, values):
        out = resolve(values, strict=False)
        assert out in list(Logic)

    @given(st.lists(st.just(L.NOINFL), max_size=6))
    def test_noinfl_identity(self, values):
        assert resolve(values) is L.NOINFL


class TestGateRules:
    def test_and_short_circuit(self):
        # "the AND node fires 0 as soon as one entering edge is 0"
        assert and_gate([L.ZERO, None]) is L.ZERO
        assert and_gate([None, L.ZERO]) is L.ZERO

    def test_and_waits_for_one(self):
        assert and_gate([L.ONE, None]) is None

    def test_and_truth(self):
        assert and_gate([L.ONE, L.ONE]) is L.ONE
        assert and_gate([L.ONE, L.UNDEF]) is L.UNDEF

    def test_or_short_circuit(self):
        assert or_gate([None, L.ONE]) is L.ONE
        assert or_gate([L.ZERO, None]) is None
        assert or_gate([L.ZERO, L.ZERO]) is L.ZERO

    def test_nand_nor(self):
        assert nand_gate([L.ZERO, None]) is L.ONE
        assert nand_gate([L.ONE, L.ONE]) is L.ZERO
        assert nor_gate([None, L.ONE]) is L.ZERO
        assert nor_gate([L.ZERO, L.ZERO]) is L.ONE

    def test_xor_no_short_circuit(self):
        # Section 8: XOR needs all inputs defined.
        assert xor_gate([L.ONE, None]) is None
        assert xor_gate([L.ONE, L.ZERO]) is L.ONE
        assert xor_gate([L.ONE, L.ONE]) is L.ZERO
        assert xor_gate([L.UNDEF, L.ONE]) is L.UNDEF

    def test_equal(self):
        assert equal_gate([L.ONE, L.ONE]) is L.ONE
        assert equal_gate([L.ONE, L.ZERO]) is L.ZERO
        assert equal_gate([L.UNDEF, L.ONE]) is L.UNDEF
        assert equal_gate([None, L.ONE]) is None

    def test_equal_fires_zero_on_defined_mismatch(self):
        # Section-8 firing rule: two defined, differing inputs settle
        # the comparison -- unknown or undefined inputs cannot change it.
        assert equal_gate([L.ONE, None, L.ZERO]) is L.ZERO
        assert equal_gate([L.ONE, L.UNDEF, L.ZERO]) is L.ZERO
        assert equal_gate([None, L.ZERO, L.ONE]) is L.ZERO
        # No mismatch yet: stay unfired / undefined.
        assert equal_gate([L.ONE, None, L.ONE]) is None
        assert equal_gate([L.ONE, L.UNDEF, L.ONE]) is L.UNDEF
        assert equal_gate([L.NOINFL, L.ONE]) is L.UNDEF

    def test_not(self):
        assert not_gate(L.ZERO) is L.ONE
        assert not_gate(L.ONE) is L.ZERO
        assert not_gate(L.UNDEF) is L.UNDEF
        assert not_gate(None) is None

    @given(st.lists(maybe_unknown, min_size=1, max_size=5))
    def test_partial_results_are_stable(self, inputs):
        """Monotonicity: once a gate fires on partial inputs, completing
        the unknown inputs with any defined values keeps the result."""
        for op in ("AND", "OR", "NAND", "NOR"):
            fn = GATE_FUNCTIONS[op]
            early = fn(inputs)
            if early is None:
                continue
            for fill in (L.ZERO, L.ONE, L.UNDEF):
                completed = [v if v is not None else fill for v in inputs]
                late = fn(completed)
                if early.is_defined:
                    assert late == early or late is L.UNDEF or late == early
            # Completing with the same values must reproduce the result.
            same = [v if v is not None else L.UNDEF for v in inputs]
            assert fn(same) is not None

    @given(st.lists(defined, min_size=2, max_size=5))
    def test_and_or_against_python(self, inputs):
        bools = [v is L.ONE for v in inputs]
        assert (and_gate(inputs) is L.ONE) == all(bools)
        assert (or_gate(inputs) is L.ONE) == any(bools)

    @given(st.lists(defined, min_size=2, max_size=5))
    def test_xor_parity(self, inputs):
        ones = sum(1 for v in inputs if v is L.ONE)
        assert (xor_gate(inputs) is L.ONE) == (ones % 2 == 1)


class TestBinNum:
    def test_bits_of_lsb_first(self):
        # BIN(10,5): element 1 is the LSB -> 0,1,0,1,0.
        assert bits_of(10, 5) == [L.ZERO, L.ONE, L.ZERO, L.ONE, L.ZERO]

    def test_bits_of_zero_width(self):
        assert bits_of(0, 0) == []

    def test_bits_of_overflow(self):
        with pytest.raises(ValueError):
            bits_of(32, 5)

    def test_bits_of_negative(self):
        with pytest.raises(ValueError):
            bits_of(-1, 4)

    def test_num_of_undefined(self):
        assert num_of([L.ONE, L.UNDEF]) is None
        assert num_of([L.ONE, L.NOINFL]) is None

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert num_of(bits_of(value, 16)) == value

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=8, max_value=12))
    def test_roundtrip_any_width(self, value, width):
        assert num_of(bits_of(value, width)) == value
