"""Automatic Zeus -> transistor translation and cross-level
co-simulation (the strengthened E10 bridge)."""

import random

import pytest

import repro
from repro.baselines import (
    SState,
    TransistorizeError,
    TransistorizedSimulator,
    transistorize,
)
from repro.stdlib import programs

from zeus_test_utils import compile_ok


def norm(value: str) -> str:
    """Map both unknown spellings (Zeus UNDEF/NOINFL, switch X) to '?'."""
    return value if value in ("0", "1") else "?"


def cosim(circuit, pokes_list, outs, cycles=1):
    """Run the same stimulus on both levels; return list of rows
    (zeus values, transistor values)."""
    zsim = circuit.simulator()
    tsim = TransistorizedSimulator(circuit.design)
    rows = []
    for pokes in pokes_list:
        for sim in (zsim, tsim):
            for name, value in pokes.items():
                sim.poke(name, value)
            sim.step(cycles)
        z = {o: [norm(str(v)) for v in zsim.peek(o)] for o in outs}
        t = {o: [norm(str(v)) for v in tsim.peek(o)] for o in outs}
        rows.append((z, t))
    return rows


class TestCombinational:
    def test_adder_agrees(self):
        circuit = compile_ok(programs.ripple_carry(4), top="adder")
        rng = random.Random(3)
        pokes = [
            {"a": rng.randrange(16), "b": rng.randrange(16), "cin": rng.randrange(2)}
            for _ in range(12)
        ]
        for z, t in cosim(circuit, pokes, ["s", "cout"]):
            assert z == t

    def test_mux4_agrees(self):
        circuit = compile_ok(programs.MUX4)
        pokes = [
            {"d": d, "a": [(sel >> 1) & 1, sel & 1], "g": g}
            for d in (0b1010, 0b0111)
            for sel in range(4)
            for g in (0, 1)
        ]
        for z, t in cosim(circuit, pokes, ["y"]):
            assert z == t

    def test_gate_zoo_agrees(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b, c: boolean;
                                OUT y1, y2, y3, y4, y5: boolean) IS
            BEGIN
                y1 := AND(a, b, c);
                y2 := NOR(a, b);
                y3 := XOR(a, XOR(b, c));
                y4 := NAND(a, b, c);
                y5 := EQUAL(a, b)
            END;
            SIGNAL u: t;
            """
        )
        pokes = [
            {"a": (v >> 0) & 1, "b": (v >> 1) & 1, "c": (v >> 2) & 1}
            for v in range(8)
        ]
        for z, t in cosim(circuit, pokes, ["y1", "y2", "y3", "y4", "y5"]):
            assert z == t


class TestSequential:
    def test_toggle_register_agrees(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN en: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN
                IF RSET THEN r.in := 0
                ELSE
                    IF en THEN r.in := NOT r.out END;
                END;
                q := r.out
            END;
            SIGNAL u: t;
            """
        )
        zsim = circuit.simulator()
        tsim = TransistorizedSimulator(circuit.design)
        for sim in (zsim, tsim):
            sim.poke("RSET", 1)
            sim.poke("en", 0)
            sim.step()
            sim.poke("RSET", 0)
        for en in (1, 1, 0, 1, 0, 0, 1):
            for sim in (zsim, tsim):
                sim.poke("en", en)
                sim.step()
            assert norm(str(zsim.peek_bit("q"))) == norm(str(tsim.peek("q")[0]))

    def test_charge_retention_matches_keep_rule(self):
        """A disabled guarded register write: the Zeus 'keeps its value'
        rule equals transistor-level charge retention on the floating
        data node."""
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN d, en: boolean; OUT q: boolean) IS
            SIGNAL r: REG;
            BEGIN
                IF en THEN r.in := d END;
                q := r.out
            END;
            SIGNAL u: t;
            """
        )
        zsim = circuit.simulator()
        tsim = TransistorizedSimulator(circuit.design)
        script = [(1, 1), (0, 0), (0, 0), (1, 0), (0, 1), (1, 0)]
        for d, en in script:
            for sim in (zsim, tsim):
                sim.poke("d", d)
                sim.poke("en", en)
                sim.step()
            assert norm(str(zsim.peek_bit("q"))) == norm(str(tsim.peek("q")[0]))


class TestTranslation:
    def test_transistor_counts_recorded(self):
        circuit = compile_ok(programs.ripple_carry(4), top="adder")
        t = transistorize(circuit.design)
        assert t.stats["transistors"] > 100
        assert t.stats["gates"] == circuit.stats()["gates"]

    def test_random_is_rejected(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := AND(a, RANDOM()) END;
            SIGNAL u: t;
            """
        )
        with pytest.raises(TransistorizeError):
            transistorize(circuit.design)

    def test_aliased_nets_share_nodes(self):
        circuit = compile_ok(programs.htree(4))
        t = transistorize(circuit.design)
        nl = circuit.netlist
        out_nets = nl.port("out").nets
        canon = nl.find(out_nets[0]).id
        # All members of the htree bus alias class map to one node.
        nodes = {
            t.node_of[nl.find(n).id]
            for n in nl.nets
            if nl.find(n).id == canon
        }
        assert len(nodes) == 1
