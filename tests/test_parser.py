"""Parser tests against the section-7 EBNF."""

import pytest

from repro.lang import ParseError, ast, parse, parse_expression


def parse_one(text):
    prog = parse(text)
    assert len(prog.decls) >= 1
    return prog.decls[0]


class TestDeclarations:
    def test_const_numeric(self):
        d = parse_one("CONST length = 7;")
        assert isinstance(d, ast.ConstDecl)
        assert d.name == "length"
        assert isinstance(d.value, ast.NumberLit)

    def test_const_signal_tuple(self):
        d = parse_one("CONST start = (0,0,0);")
        assert isinstance(d.value, ast.Tuple_)
        assert len(d.value.items) == 3

    def test_const_nested_tuple(self):
        d = parse_one("CONST a = ((0,1),(1,0),(0,0));")
        assert isinstance(d.value, ast.Tuple_)
        assert all(isinstance(i, ast.Tuple_) for i in d.value.items)

    def test_const_parenthesised_arithmetic(self):
        d = parse_one("CONST x = (3+4)*2;")
        assert isinstance(d.value, ast.Binary)
        assert d.value.op == "*"

    def test_const_bin(self):
        d = parse_one("CONST ten = BIN(10,5);")
        assert isinstance(d.value, ast.BinCall)

    def test_multiple_consts_one_keyword(self):
        prog = parse("CONST a = 1; b = 2; c = 3;")
        assert len(prog.decls) == 3

    def test_type_simple(self):
        d = parse_one("TYPE bus4 = ARRAY [1..4] OF boolean;")
        assert isinstance(d, ast.TypeDecl)
        assert isinstance(d.type, ast.ArrayType)

    def test_type_parameterized(self):
        d = parse_one("TYPE bo(n) = ARRAY [1..n] OF boolean;")
        assert d.params == ["n"]

    def test_type_two_parameters(self):
        d = parse_one("TYPE m(a, b) = ARRAY [1..a] OF ARRAY [1..b] OF boolean;")
        assert d.params == ["a", "b"]

    def test_signal_declaration(self):
        d = parse_one("SIGNAL x, y: boolean;")
        assert isinstance(d, ast.SignalDecl)
        assert d.names == ["x", "y"]

    def test_signal_with_type_args(self):
        d = parse_one("SIGNAL adder: rippleCarry(4);")
        assert isinstance(d.type, ast.NamedType)
        assert len(d.type.args) == 1

    def test_empty_program_is_valid(self):
        assert parse("").decls == []

    def test_junk_is_rejected(self):
        with pytest.raises(ParseError):
            parse("BEGIN END")


class TestComponentTypes:
    def test_record_type(self):
        d = parse_one("TYPE bus = COMPONENT (r,s,t: boolean; u: boolean);")
        assert isinstance(d.type, ast.ComponentType)
        assert d.type.body is None  # record: no body

    def test_component_with_body(self):
        d = parse_one(
            "TYPE h = COMPONENT (IN a,b: boolean; OUT s: boolean) IS "
            "BEGIN s := XOR(a,b) END;"
        )
        assert d.type.body is not None
        assert len(d.type.body) == 1

    def test_parameter_modes(self):
        d = parse_one(
            "TYPE h = COMPONENT (IN a: boolean; OUT b: boolean; c: multiplex);"
        )
        modes = [p.mode for p in d.type.params]
        assert modes == [ast.Mode.IN, ast.Mode.OUT, ast.Mode.INOUT]

    def test_function_component(self):
        d = parse_one(
            "TYPE f = COMPONENT (IN a: boolean) : boolean IS "
            "BEGIN RESULT NOT a END;"
        )
        assert d.type.result is not None
        assert isinstance(d.type.body[0], ast.Result)

    def test_function_without_is_rejected(self):
        with pytest.raises(ParseError):
            parse("TYPE f = COMPONENT (IN a: boolean) : boolean;")

    def test_uses_list(self):
        d = parse_one(
            "TYPE h = COMPONENT (IN a: boolean) IS USES x, y; BEGIN END;"
        )
        assert d.type.uses == ["x", "y"]

    def test_empty_uses_list(self):
        d = parse_one("TYPE h = COMPONENT (IN a: boolean) IS USES ; BEGIN END;")
        assert d.type.uses == []

    def test_no_uses_means_none(self):
        d = parse_one("TYPE h = COMPONENT (IN a: boolean) IS BEGIN END;")
        assert d.type.uses is None

    def test_local_declarations(self):
        d = parse_one(
            """TYPE f = COMPONENT (IN a: boolean) IS
               CONST k = 2;
               TYPE t = ARRAY [1..k] OF boolean;
               SIGNAL s: t;
               BEGIN END;"""
        )
        assert len(d.type.decls) == 3

    def test_layout_block(self):
        d = parse_one(
            """TYPE f = COMPONENT (IN a: boolean) IS
               SIGNAL s: boolean;
               { ORDER lefttoright s END }
               BEGIN END;"""
        )
        assert len(d.type.layout) == 1

    def test_header_layout_block(self):
        d = parse_one(
            "TYPE f = COMPONENT (IN a: boolean) { BOTTOM a } IS BEGIN END;"
        )
        assert len(d.type.header_layout) == 1

    def test_multidim_array_desugars(self):
        d = parse_one("TYPE m = ARRAY [1..3, 1..4] OF boolean;")
        outer = d.type
        assert isinstance(outer, ast.ArrayType)
        assert isinstance(outer.element, ast.ArrayType)


class TestStatements:
    def stmts(self, body):
        d = parse_one(
            f"TYPE f = COMPONENT (IN a,b: boolean; OUT y: boolean; z: multiplex) IS "
            f"SIGNAL s: boolean; g: multiplex; arr: ARRAY [1..4] OF boolean; "
            f"BEGIN {body} END;"
        )
        return d.type.body

    def test_assignment(self):
        (s,) = self.stmts("y := a")
        assert isinstance(s, ast.Assign)
        assert s.op == ":="

    def test_aliasing(self):
        (s,) = self.stmts("z == g")
        assert s.op == "=="

    def test_star_assignment(self):
        (s,) = self.stmts("y := *")
        assert isinstance(s.value, ast.Star)

    def test_star_target(self):
        (s,) = self.stmts("* := a")
        assert isinstance(s.target, ast.Star)

    def test_star_with_width(self):
        (s,) = self.stmts("z == * : 3")
        assert isinstance(s.value, ast.Star)
        assert s.value.width is not None

    def test_connection(self):
        (s,) = self.stmts("s(a, b)")
        assert isinstance(s, ast.Connection)
        assert len(s.actuals) == 2

    def test_connection_with_star(self):
        (s,) = self.stmts("s(a, *, b)")
        assert isinstance(s.actuals[1], ast.Star)

    def test_bare_signal_statement(self):
        (s,) = self.stmts("s")
        assert isinstance(s, ast.Connection)
        assert s.actuals == []

    def test_if_then(self):
        (s,) = self.stmts("IF a THEN y := b END")
        assert isinstance(s, ast.If)
        assert len(s.arms) == 1

    def test_if_elsif_else(self):
        (s,) = self.stmts(
            "IF a THEN y := b ELSIF b THEN y := a ELSE y := 0 END"
        )
        assert len(s.arms) == 2
        assert len(s.else_body) == 1

    def test_for_to(self):
        (s,) = self.stmts("FOR i := 1 TO 4 DO arr[i] := a END")
        assert isinstance(s, ast.For)
        assert not s.downto
        assert not s.sequentially

    def test_for_downto(self):
        (s,) = self.stmts("FOR i := 4 DOWNTO 1 DO arr[i] := a END")
        assert s.downto

    def test_for_sequentially(self):
        (s,) = self.stmts("FOR i := 1 TO 4 DO SEQUENTIALLY arr[i] := a END")
        assert s.sequentially

    def test_when_generation(self):
        (s,) = self.stmts(
            "WHEN 1 = 1 THEN y := a OTHERWISEWHEN 2 > 1 THEN y := b "
            "OTHERWISE y := 0 END"
        )
        assert isinstance(s, ast.WhenGen)
        assert len(s.arms) == 2
        assert len(s.otherwise) == 1

    def test_sequential_parallel(self):
        (s,) = self.stmts("SEQUENTIAL y := a; PARALLEL s := b END END")
        assert isinstance(s, ast.Sequential)
        assert isinstance(s.body[1], ast.Parallel)

    def test_with_statement(self):
        (s,) = self.stmts("WITH s DO y := a END")
        assert isinstance(s, ast.With)

    def test_empty_statements_allowed(self):
        assert self.stmts(";; y := a ;;") is not None

    def test_statement_list_semicolons(self):
        body = self.stmts("y := a; s := b")
        assert len(body) == 2


class TestExpressions:
    def test_designator_chain(self):
        e = parse_expression("a[1].b[2..3].c")
        assert isinstance(e, ast.Field)

    def test_num_index(self):
        e = parse_expression("ram[NUM(a)]")
        assert isinstance(e, ast.IndexNum)

    def test_index_list_sugar(self):
        e = parse_expression("m[i, j]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Index)

    def test_field_range(self):
        e = parse_expression("s.first..last")
        assert isinstance(e, ast.FieldRange)

    def test_call(self):
        e = parse_expression("XOR(a, b)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_keyword_gate_call(self):
        e = parse_expression("AND(a, OR(b, c))")
        assert isinstance(e, ast.Call)
        assert e.func.ident == "AND"

    def test_not_prefix(self):
        e = parse_expression("NOT g")
        assert isinstance(e, ast.Unary)

    def test_bin_call(self):
        e = parse_expression("BIN(10, 5)")
        assert isinstance(e, ast.BinCall)

    def test_tuple_concatenation(self):
        e = parse_expression("(a, b, (c, d))")
        assert isinstance(e, ast.Tuple_)
        assert len(e.items) == 3

    def test_clk_rset(self):
        assert isinstance(parse_expression("CLK"), ast.Name)
        assert isinstance(parse_expression("RSET"), ast.Name)

    def test_const_arithmetic_in_index(self):
        e = parse_expression("se[i DIV 2]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.index, ast.Binary)

    def test_index_expression_arith(self):
        e = parse_expression("h[2*i+1]")
        assert isinstance(e.index, ast.Binary)

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(a, b")


class TestLayoutStatements:
    def layout(self, text):
        d = parse_one(
            f"TYPE f = COMPONENT (IN a: boolean) IS "
            f"SIGNAL s: ARRAY [1..4] OF boolean; "
            f"{{ {text} }} BEGIN END;"
        )
        return d.type.layout

    def test_order(self):
        (s,) = self.layout("ORDER lefttoright s END")
        assert isinstance(s, ast.LayoutOrder)
        assert s.direction == "lefttoright"

    def test_unknown_direction_rejected(self):
        with pytest.raises(ParseError):
            self.layout("ORDER sideways s END")

    def test_orientation_change(self):
        (s,) = self.layout("flip90 s")
        assert isinstance(s, ast.LayoutBasic)
        assert s.orientation == "flip90"

    def test_replacement(self):
        (s,) = self.layout("s = boolean")
        assert s.replacement is not None

    def test_boundary(self):
        (s,) = self.layout("BOTTOM a; s")
        assert isinstance(s, ast.LayoutBoundary)
        assert s.side == "bottom"
        assert len(s.body) == 2

    def test_layout_for(self):
        (s,) = self.layout("FOR i := 1 TO 4 DO s[i] END")
        assert isinstance(s, ast.LayoutFor)

    def test_layout_when(self):
        (s,) = self.layout("WHEN 1=1 THEN s OTHERWISE s END")
        assert isinstance(s, ast.LayoutWhen)

    def test_nested_orders(self):
        (s,) = self.layout(
            "ORDER lefttoright ORDER toptobottom s[1]; s[2] END; "
            "ORDER toptobottom s[3]; s[4] END; END"
        )
        assert len(s.body) == 2


class TestPaperPrograms:
    """Every bundled paper program must parse."""

    @pytest.mark.parametrize("name", sorted(
        __import__("repro.stdlib.programs", fromlist=["ALL_PROGRAMS"]).ALL_PROGRAMS
    ))
    def test_parses(self, name):
        from repro.stdlib.programs import ALL_PROGRAMS

        prog = parse(ALL_PROGRAMS[name])
        assert prog.decls
