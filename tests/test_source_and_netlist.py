"""Unit tests for source handling, diagnostics and the netlist IR."""

import pytest

from repro.core.netlist import Netlist
from repro.core.values import Logic
from repro.lang.errors import (
    CheckError,
    Diagnostic,
    DiagnosticSink,
    Severity,
)
from repro.lang.source import NO_SPAN, SourceText, Span


class TestSourceText:
    TEXT = "first line\nsecond line\nthird"

    def test_position_mapping(self):
        src = SourceText(self.TEXT)
        assert str(src.position(0)) == "1:1"
        assert str(src.position(11)) == "2:1"
        assert str(src.position(18)) == "2:8"

    def test_position_clamps(self):
        src = SourceText(self.TEXT)
        assert src.position(9999).line == 3

    def test_line_text(self):
        src = SourceText(self.TEXT)
        assert src.line_text(2) == "second line"
        assert src.line_text(99) == ""

    def test_snippet(self):
        src = SourceText(self.TEXT)
        assert src.snippet(Span(0, 5)) == "first"

    def test_caret_diagram(self):
        src = SourceText(self.TEXT)
        diagram = src.caret_diagram(Span(11, 17))
        assert diagram.splitlines() == ["second line", "^^^^^^"]

    def test_span_merge(self):
        assert Span(5, 8).merge(Span(2, 6)) == Span(2, 8)

    def test_empty_source(self):
        src = SourceText("")
        assert src.position(0).line == 1


class TestDiagnostics:
    def test_render_with_source(self):
        src = SourceText("x := y", "f.zeus")
        d = Diagnostic(Severity.ERROR, "boom", Span(0, 1), "check")
        text = d.render(src)
        assert "f.zeus:1:1" in text
        assert "boom" in text
        assert "^" in text

    def test_render_without_source(self):
        d = Diagnostic(Severity.WARNING, "careful")
        assert d.render() == "warning: careful"

    def test_strict_sink_raises(self):
        sink = DiagnosticSink(strict=True)
        with pytest.raises(CheckError):
            sink.error("bad")

    def test_permissive_sink_collects(self):
        sink = DiagnosticSink()
        sink.error("one")
        sink.warning("two")
        sink.error("three")
        assert len(sink.errors) == 2
        assert len(sink.warnings) == 1
        assert sink.has_errors()


class TestNetlist:
    def test_net_creation(self):
        nl = Netlist("t")
        a = nl.new_net("a", "boolean", is_input=True)
        assert a.id == 0
        assert nl.input_nets == [a]

    def test_gate_creates_output(self):
        nl = Netlist()
        a = nl.new_net("a", "boolean")
        out = nl.add_gate("AND", [a, a])
        assert out.role == "gate"
        assert nl.gates[0].output is out

    def test_alias_union_find(self):
        nl = Netlist()
        a, b, c = (nl.new_net(n, "multiplex") for n in "abc")
        nl.alias(a, b)
        nl.alias(b, c)
        assert nl.find(c) is nl.find(a)
        assert set(n.name for n in nl.alias_class(b)) == {"a", "b", "c"}

    def test_alias_is_idempotent(self):
        nl = Netlist()
        a, b = nl.new_net("a", "multiplex"), nl.new_net("b", "multiplex")
        nl.alias(a, b)
        nl.alias(a, b)
        nl.alias(b, a)
        assert len(nl.alias_class(a)) == 2

    def test_unique_conns_dedupes(self):
        nl = Netlist()
        a, b = nl.new_net("a", "boolean"), nl.new_net("b", "boolean")
        nl.add_conn(a, b)
        nl.add_conn(a, b)
        assert len(nl.conns) == 2
        assert len(nl.unique_conns()) == 1

    def test_unique_conns_respects_aliasing(self):
        nl = Netlist()
        a = nl.new_net("a", "multiplex")
        b = nl.new_net("b", "multiplex")
        dst = nl.new_net("d", "multiplex")
        nl.add_conn(a, dst)
        nl.add_conn(b, dst)
        assert len(nl.unique_conns()) == 2
        nl.alias(a, b)  # now the two edges are the same edge
        assert len(nl.unique_conns()) == 1

    def test_unique_const_conns(self):
        nl = Netlist()
        d = nl.new_net("d", "boolean")
        nl.add_const(Logic.ONE, d)
        nl.add_const(Logic.ONE, d)
        nl.add_const(Logic.ZERO, d)
        assert len(nl.unique_const_conns()) == 2

    def test_register_signal_and_stats(self):
        nl = Netlist()
        a = nl.new_net("x.a", "boolean")
        nl.register_signal("x.a", [a])
        assert nl.signals["x.a"] == [a]
        assert nl.stats()["nets"] == 1

    def test_reg_ids(self):
        nl = Netlist()
        d, q = nl.new_net("d", "boolean"), nl.new_net("q", "boolean")
        reg = nl.add_reg(d, q, "r")
        assert reg.id == 0
        assert nl.stats()["registers"] == 1
