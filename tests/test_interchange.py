"""The Verilog interchange: emitter, reader, and the round-trip
differential.

* golden files for three stdlib designs (``tests/golden/
  *_structural.v``) behind a normalizing comparator, mirroring the
  codegen golden pattern;
* the ISCAS-style scenario family: the bundled c17 netlist checked
  exhaustively against a pure-Python oracle, plus the seeded generator
  (combinational and ``dff`` sequential families);
* the round-trip acceptance: every stdlib program and a block of fuzz
  seeds export -> import with bit-identical co-simulation (ports,
  registers, violations) against the original circuit;
* reader error paths: unsupported constructs, dangling instance
  ports, duplicate module names -- each exiting 2 through the CLI with
  a ``zeus.error/1`` payload naming the source line;
* name mangling: injective over the whole corpus and over adversarial
  names (keywords, brackets, digits), property-tested.

Long blocks are gated behind ``ZEUS_FUZZ_LONG`` like the fuzz suite;
tier-1 stays fast.
"""

import itertools
import json
import os
import pathlib
import shutil
import subprocess

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import Logic, Simulator
from repro.analysis.fuzzgen import generate_program
from repro.analysis.roundtrip import (
    check_program,
    cosimulate,
    round_trip,
    stdlib_corpus,
)
from repro.cli import main
from repro.interchange import (
    C17_VERILOG,
    NameMangler,
    VERILOG_KEYWORDS,
    c17_oracle,
    emit_verilog,
    generate_iscas,
    import_manifest,
    is_verilog_identifier,
    name_map,
    read_verilog,
    reverse_name_map,
    validate_manifest,
)
from repro.lang import InterchangeError
from repro.stdlib import ALL_PROGRAMS

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
GOLDEN_DESIGNS = ("mux4", "blackjack", "section8")

long_fuzz = pytest.mark.skipif(
    not os.environ.get("ZEUS_FUZZ_LONG"),
    reason="long-budget block (set ZEUS_FUZZ_LONG=1; the nightly job does)",
)


def _compile(name):
    return repro.compile_text(ALL_PROGRAMS[name], name=name)


def normalize_verilog(text: str) -> str:
    """The golden comparator: strip ``//`` comments, collapse runs of
    whitespace, drop blank lines -- so formatting-only emitter changes
    don't churn the golden files."""
    lines = []
    for line in text.splitlines():
        line = line.split("//", 1)[0]
        line = " ".join(line.split())
        if line:
            lines.append(line)
    return "\n".join(lines)


# -- golden files ---------------------------------------------------------


class TestGolden:
    @pytest.mark.parametrize("name", GOLDEN_DESIGNS)
    def test_matches_golden(self, name):
        """Emitted structural Verilog for three stdlib designs.  On an
        intended emitter change, regenerate with
        ``emit_verilog(circuit.design)[0]`` and update
        ``tests/golden/<name>_structural.v``."""
        text, _ = emit_verilog(_compile(name).design)
        golden = (GOLDEN_DIR / f"{name}_structural.v").read_text()
        assert normalize_verilog(text) == normalize_verilog(golden), (
            f"emitted Verilog drifted from tests/golden/"
            f"{name}_structural.v -- if the emission change is "
            f"intended, rewrite the golden file from emit_verilog"
        )

    def test_emission_is_deterministic(self):
        a, ma = emit_verilog(_compile("mux4").design)
        b, mb = emit_verilog(_compile("mux4").design)
        assert a == b
        assert ma == mb

    @pytest.mark.parametrize("name", GOLDEN_DESIGNS)
    def test_golden_files_reimport(self, name):
        """The shipped goldens themselves stay inside the subset."""
        design = read_verilog(
            (GOLDEN_DIR / f"{name}_structural.v").read_text(),
            name=f"{name}_structural.v",
        )
        assert design.netlist.ports


# -- manifest -------------------------------------------------------------


class TestManifest:
    def test_corpus_manifests_validate(self):
        for name, text in stdlib_corpus():
            circuit = repro.compile_text(text, name=name, strict=False)
            _, manifest = emit_verilog(circuit.design)
            validate_manifest(manifest)  # raises on any defect
            assert manifest["design"] == circuit.design.name
            rev = reverse_name_map(manifest)
            for disp, vname in name_map(manifest).items():
                assert rev[vname] == disp

    def test_validator_rejects_non_injective_map(self):
        _, manifest = emit_verilog(_compile("mux4").design)
        nets = dict(manifest["nets"])
        a, b, *_ = nets
        nets[a] = dict(nets[a], verilog=nets[b]["verilog"])
        with pytest.raises(ValueError, match="not injective"):
            validate_manifest(dict(manifest, nets=nets))

    def test_validator_rejects_wrong_schema(self):
        _, manifest = emit_verilog(_compile("mux4").design)
        with pytest.raises(ValueError, match="schema"):
            validate_manifest(dict(manifest, schema="zeus.interchange/0"))

    def test_register_map_covers_simulator_keys(self):
        circuit = _compile("blackjack")
        _, manifest = emit_verilog(circuit.design)
        sim = circuit.simulator()
        sim.step()
        assert set(manifest["regs"]) == set(sim.registers())

    def test_import_manifest_is_identity(self):
        text, _ = emit_verilog(_compile("section8").design)
        manifest = import_manifest(read_verilog(text))
        validate_manifest(manifest)
        assert all(e["verilog"] == d for d, e in manifest["nets"].items())


# -- the ISCAS-style scenario family --------------------------------------


class TestIscas:
    def test_c17_exhaustive_vs_oracle(self):
        design = read_verilog(C17_VERILOG, name="c17.v")
        sim = Simulator(design, strict=False)
        for bits in itertools.product((0, 1), repeat=5):
            for pin, v in zip(("N1", "N2", "N3", "N6", "N7"), bits):
                sim.poke(pin, v)
            sim.step()
            got = (sim.peek("N22")[0], sim.peek("N23")[0])
            want = c17_oracle(*bits)
            assert got == (Logic(want[0]), Logic(want[1])), bits

    def test_c17_shape(self):
        design = read_verilog(C17_VERILOG)
        assert design.name == "c17"
        assert design.netlist.stats()["gates"] == 6
        modes = {p.name: p.mode for p in design.netlist.ports}
        assert modes == {
            "N1": "IN", "N2": "IN", "N3": "IN", "N6": "IN", "N7": "IN",
            "N22": "OUT", "N23": "OUT",
        }

    def test_c17_round_trips_through_emitter(self):
        """Import c17, emit it again, import that: observationally
        identical on all 32 vectors."""
        d1 = read_verilog(C17_VERILOG)
        text, manifest = emit_verilog(d1)
        d2 = read_verilog(text)
        nm = name_map(manifest)
        s1, s2 = Simulator(d1, strict=False), Simulator(d2, strict=False)
        for bits in itertools.product((0, 1), repeat=5):
            for pin, v in zip(("N1", "N2", "N3", "N6", "N7"), bits):
                s1.poke(pin, v)
                s2.poke(nm[pin], v)
            s1.step()
            s2.step()
            for out in ("N22", "N23"):
                assert s1.peek(out) == s2.peek(nm[out]), (bits, out)

    def test_generator_is_deterministic(self):
        assert generate_iscas(7) == generate_iscas(7)
        assert generate_iscas(7) != generate_iscas(8)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_regs", (0, 3))
    def test_generated_family_simulates(self, seed, n_regs):
        design = read_verilog(
            generate_iscas(seed, n_regs=n_regs), name=f"iscas{seed}.v")
        sim = Simulator(design, strict=False, seed=seed)
        for p in design.netlist.ports:
            if p.mode == "IN":
                sim.poke(p.name, seed & 1)
        sim.step(3)
        assert len(sim.registers()) == n_regs
        outs = [p for p in design.netlist.ports if p.mode == "OUT"]
        assert outs
        for p in outs:
            assert sim.peek(p.name)  # observable


# -- the round-trip acceptance --------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("name", [n for n, _ in stdlib_corpus()])
    def test_stdlib_program(self, name):
        """Every stdlib program: export -> import -> lane-by-lane
        co-simulation against the original (ports, registers,
        violations)."""
        text = dict(stdlib_corpus())[name]
        res = check_program(text, name=name, cycles=3, n_vectors=4)
        assert res.ok, res.detail

    @pytest.mark.parametrize("seed", range(25))
    def test_fuzz_fast_slice(self, seed):
        prog = generate_program(seed)
        circuit = repro.compile_text(prog.text, name="fuzz", strict=False)
        rt = round_trip(circuit.design)
        res = cosimulate(rt, cycles=3, n_vectors=4, seed=seed)
        assert res.ok, f"seed {seed}: {res.detail}\n{prog.text}"

    def test_random_gates_keep_rng_stream(self):
        text = """
TYPE t = COMPONENT (IN a: boolean; OUT y0, y1: boolean) IS
SIGNAL r0: REG; SIGNAL s: boolean;
BEGIN
    s := RANDOM();
    r0.in := XOR(s, a);
    y0 := RANDOM();
    y1 := AND(r0.out, s)
END;
SIGNAL u: t;
"""
        for seed in range(4):
            res = check_program(text, name="rnd", cycles=6, seed=seed)
            assert res.ok, res.detail

    def test_undef_stimulus_agrees(self):
        """Explicit UNDEF input bits: the four-valued planes survive
        the translation."""
        circuit = _compile("mux4")
        rt = round_trip(circuit.design)
        vec = {
            p.name: [Logic.UNDEF] * len(p.nets)
            for p in circuit.netlist.ports if p.mode == "IN"
        }
        res = cosimulate(rt, cycles=2, vectors=[vec])
        assert res.ok, res.detail

    @long_fuzz
    @pytest.mark.slow
    @pytest.mark.parametrize("block", range(4))
    def test_fuzz_long_block(self, block):
        """The 200-seed acceptance budget (50 seeds x 4 blocks)."""
        for seed in range(block * 50, (block + 1) * 50):
            prog = generate_program(seed)
            circuit = repro.compile_text(
                prog.text, name="fuzz", strict=False)
            rt = round_trip(circuit.design)
            res = cosimulate(rt, cycles=3, n_vectors=4, seed=seed)
            assert res.ok, f"seed {seed}: {res.detail}\n{prog.text}"


# -- reader error paths ---------------------------------------------------


_BAD_SOURCES = {
    "unsupported-always": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  always @(posedge a) y = a;\nendmodule\n",
        "unsupported construct 'always'", 4,
    ),
    "unsupported-range": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  wire [3:0] bus;\nendmodule\n",
        "vector range", 4,
    ),
    "unsupported-delay": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  and #2 (y, a, a);\nendmodule\n",
        "delay", 4,
    ),
    "unsupported-expression": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  assign y = a & a;\nendmodule\n",
        "unsupported", 4,
    ),
    "dangling-instance-port": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  and G1 (y, a, nosuchnet);\nendmodule\n",
        "undeclared net 'nosuchnet'", 4,
    ),
    "unknown-module": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  mystery M1 (y, a);\nendmodule\n",
        "unknown module 'mystery'", 4,
    ),
    "duplicate-module": (
        "module t (y);\n  output y;\nendmodule\n"
        "module t (z);\n  output z;\nendmodule\n",
        "duplicate module", 4,
    ),
    "unknown-dff-pin": (
        "module t (a, y);\n  input a;\n  output y;\n"
        "  zeus_dff r (.q(y), .d(a), .oops(a));\nendmodule\n",
        "pin", 4,
    ),
    "port-arity": (
        "module s (a, y);\n  input a;\n  output y;\n"
        "  buf (y, a);\nendmodule\n"
        "module t (a, y);\n  input a;\n  output y;\n"
        "  s S1 (y);\nendmodule\n",
        "2 ports", 9,
    ),
}


class TestReaderErrors:
    @pytest.mark.parametrize("case", sorted(_BAD_SOURCES))
    def test_raises_with_span(self, case):
        text, match, line = _BAD_SOURCES[case]
        with pytest.raises(InterchangeError, match=match) as err:
            read_verilog(text, name=f"{case}.v")
        assert err.value.span.start > 0 or case == "duplicate-module"

    @pytest.mark.parametrize("case", sorted(_BAD_SOURCES))
    def test_cli_exits_2_with_error_payload(self, case, tmp_path, capsys):
        """``zeusc import-verilog --format json``: exit 2 and a
        ``zeus.error/1`` payload naming the source line."""
        text, _, line = _BAD_SOURCES[case]
        f = tmp_path / f"{case}.v"
        f.write_text(text)
        code = main(["import-verilog", str(f), "--format", "json"])
        assert code == 2
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["schema"] == "zeus.error/1"
        assert payload["type"] == "InterchangeError"
        assert payload["phase"] == "interchange"
        assert payload["position"]["line"] == line

    def test_ambiguous_top_is_an_error(self):
        text = ("module a (y);\n  output y;\nendmodule\n"
                "module b (y);\n  output y;\nendmodule\n")
        with pytest.raises(InterchangeError, match="top"):
            read_verilog(text)
        # ...but an explicit top resolves it.
        assert read_verilog(text, top="b").name == "b"

    def test_emit_cli_writes_verilog_and_manifest(self, tmp_path, capsys):
        v = tmp_path / "m.v"
        m = tmp_path / "m.json"
        code = main(["emit-verilog", "--builtin", "mux4",
                     "-o", str(v), "--manifest", str(m)])
        assert code == 0
        validate_manifest(json.loads(m.read_text()))
        code = main(["import-verilog", str(v)])
        assert code == 0
        assert "imported" in capsys.readouterr().out


# -- name mangling --------------------------------------------------------


_NAME_ALPHABET = st.text(
    alphabet="abXY01._[]$", min_size=1, max_size=12)
_ADVERSARIAL = st.one_of(
    _NAME_ALPHABET,
    st.sampled_from(sorted(VERILOG_KEYWORDS)),
    st.sampled_from(["a[1]", "a_1", "a.1", "3x", "", "$and0", "wire",
                     "RSET", "input", "Input", "a[1].b", "a.1_b"]),
)


class TestMangling:
    def test_injective_over_corpus(self):
        """The whole-corpus injectivity property: across every stdlib
        program, the emitted name map never collides and every
        identifier is legal non-keyword Verilog."""
        for name, text in stdlib_corpus():
            circuit = repro.compile_text(text, name=name, strict=False)
            _, manifest = emit_verilog(circuit.design)
            mapping = name_map(manifest)
            assert len(set(mapping.values())) == len(mapping), name
            for vname in mapping.values():
                assert is_verilog_identifier(vname), (name, vname)

    @given(st.lists(_ADVERSARIAL, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_injective_on_adversarial_names(self, names):
        mangler = NameMangler()
        out = [mangler.mangle(n, None) for n in dict.fromkeys(names)]
        assert len(set(out)) == len(out)
        for vname in out:
            assert is_verilog_identifier(vname)

    def test_keywords_and_collisions(self):
        mangler = NameMangler()
        assert mangler.mangle("wire") == "n_wire"
        assert mangler.mangle("Input") == "n_Input"  # case-insensitive
        assert mangler.mangle("a[1]") == "a_1"
        assert mangler.mangle("a_1") == "a_1__2"  # collision resolved
        assert mangler.mangle("3x") == "n_3x"
        assert mangler.mangle("a[1]") == "a_1"  # stable on re-ask

    def test_specials_survive_verbatim(self):
        """RSET/CLK drive the default-ZERO input rule by display name;
        they must cross the translation unchanged."""
        circuit = _compile("blackjack")
        text, manifest = emit_verilog(circuit.design)
        mapping = name_map(manifest)
        assert mapping.get("RSET") == "RSET"
        assert "RSET" in manifest["extra_inputs"]
        # Blackjack never names CLK, so the register clock is a
        # synthesized port -- recorded in the manifest, named CLK.
        assert manifest["synthetic_clock"] == "CLK"
        assert "input RSET;" in text and "input CLK;" in text


# -- optional: iverilog compile check -------------------------------------


@pytest.mark.skipif(shutil.which("iverilog") is None,
                    reason="iverilog not installed")
class TestIverilog:
    @pytest.mark.parametrize("name", GOLDEN_DESIGNS)
    def test_emitted_file_compiles(self, name, tmp_path):
        text, _ = emit_verilog(_compile(name).design)
        f = tmp_path / f"{name}.v"
        f.write_text(text)
        out = tmp_path / "a.out"
        proc = subprocess.run(
            ["iverilog", "-o", str(out), str(f)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
