"""Trace capture and VCD export tests."""

import pytest

import repro
from repro.core.trace import Trace
from repro.core.values import Logic

from zeus_test_utils import compile_ok

COUNTER = """
TYPE t = COMPONENT (IN en: boolean; OUT q0, q1: boolean) IS
SIGNAL r0, r1: REG;
BEGIN
    IF RSET THEN r0.in := 0; r1.in := 0
    ELSE
        IF en THEN
            r0.in := NOT r0.out;
            IF r0.out THEN r1.in := NOT r1.out END;
        END;
    END;
    q0 := r0.out;
    q1 := r1.out
END;
SIGNAL c: t;
"""


def run_counter(cycles=8):
    circuit = compile_ok(COUNTER)
    sim = circuit.simulator()
    trace = Trace(["en", "q0", "q1"])
    sim.attach_trace(trace)
    sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
    sim.poke("RSET", 0); sim.poke("en", 1)
    sim.step(cycles)
    return trace


class TestTrace:
    def test_samples_every_cycle(self):
        trace = run_counter(8)
        assert trace.cycles == 9
        assert len(trace.bits("q0")) == 9

    def test_counter_counts(self):
        trace = run_counter(8)
        q0 = trace.bits("q0")[1:]  # skip reset cycle
        q1 = trace.bits("q1")[1:]
        values = [
            (1 if b0 is Logic.ONE else 0) + 2 * (1 if b1 is Logic.ONE else 0)
            for b0, b1 in zip(q0, q1)
        ]
        assert values == [(t % 4) for t in range(len(values))]

    def test_ints_view(self):
        trace = run_counter(4)
        assert trace.ints("q0")[1:] == [0, 1, 0, 1]

    def test_bits_rejects_vectors(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator()
        trace = Trace(["c.r0.in"])
        sim.attach_trace(trace)
        sim.step()
        assert len(trace.values("c.r0.in")[0]) == 1

    def test_ascii_rendering(self):
        trace = run_counter(4)
        text = trace.render_ascii()
        assert "q0" in text and "|" in text

    def test_vcd_header_and_changes(self):
        trace = run_counter(4)
        vcd = trace.to_vcd("counter")
        assert "$timescale" in vcd
        assert "$var wire 1" in vcd
        assert "$enddefinitions" in vcd
        assert "#0" in vcd

    def test_vcd_roundtrip_values(self):
        trace = run_counter(4)
        vcd = trace.to_vcd()
        # q0 toggles every enabled cycle: its ident must appear repeatedly.
        lines = [l for l in vcd.splitlines() if l and l[0] in "01xz"]
        assert len(lines) >= 4

    def test_write_vcd(self, tmp_path):
        trace = run_counter(2)
        out = tmp_path / "wave.vcd"
        trace.write_vcd(str(out))
        assert out.read_text().startswith("$date")

    def test_vector_signals_in_vcd(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..4] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN y := NOT a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        trace = Trace(["a", "y"])
        sim.attach_trace(trace)
        sim.poke("a", 5)
        sim.step()
        vcd = trace.to_vcd()
        assert "$var wire 4" in vcd
        assert any(l.startswith("b") for l in vcd.splitlines())
