"""Trace capture and VCD export tests."""

import pytest

import repro
from repro.core.trace import Trace
from repro.core.values import Logic

from zeus_test_utils import compile_ok

COUNTER = """
TYPE t = COMPONENT (IN en: boolean; OUT q0, q1: boolean) IS
SIGNAL r0, r1: REG;
BEGIN
    IF RSET THEN r0.in := 0; r1.in := 0
    ELSE
        IF en THEN
            r0.in := NOT r0.out;
            IF r0.out THEN r1.in := NOT r1.out END;
        END;
    END;
    q0 := r0.out;
    q1 := r1.out
END;
SIGNAL c: t;
"""


def run_counter(cycles=8):
    circuit = compile_ok(COUNTER)
    sim = circuit.simulator()
    trace = Trace(["en", "q0", "q1"])
    sim.attach_trace(trace)
    sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
    sim.poke("RSET", 0); sim.poke("en", 1)
    sim.step(cycles)
    return trace


class TestTrace:
    def test_samples_every_cycle(self):
        trace = run_counter(8)
        assert trace.cycles == 9
        assert len(trace.bits("q0")) == 9

    def test_counter_counts(self):
        trace = run_counter(8)
        q0 = trace.bits("q0")[1:]  # skip reset cycle
        q1 = trace.bits("q1")[1:]
        values = [
            (1 if b0 is Logic.ONE else 0) + 2 * (1 if b1 is Logic.ONE else 0)
            for b0, b1 in zip(q0, q1)
        ]
        assert values == [(t % 4) for t in range(len(values))]

    def test_ints_view(self):
        trace = run_counter(4)
        assert trace.ints("q0")[1:] == [0, 1, 0, 1]

    def test_bits_rejects_vectors(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator()
        trace = Trace(["c.r0.in"])
        sim.attach_trace(trace)
        sim.step()
        assert len(trace.values("c.r0.in")[0]) == 1

    def test_ascii_rendering(self):
        trace = run_counter(4)
        text = trace.render_ascii()
        assert "q0" in text and "|" in text

    def test_vcd_header_and_changes(self):
        trace = run_counter(4)
        vcd = trace.to_vcd("counter")
        assert "$timescale" in vcd
        assert "$var wire 1" in vcd
        assert "$enddefinitions" in vcd
        assert "#0" in vcd

    def test_vcd_roundtrip_values(self):
        trace = run_counter(4)
        vcd = trace.to_vcd()
        # q0 toggles every enabled cycle: its ident must appear repeatedly.
        lines = [l for l in vcd.splitlines() if l and l[0] in "01xz"]
        assert len(lines) >= 4

    def test_write_vcd(self, tmp_path):
        trace = run_counter(2)
        out = tmp_path / "wave.vcd"
        trace.write_vcd(str(out))
        assert out.read_text().startswith("$date")

    def test_empty_history_views(self):
        trace = Trace(["x"])
        assert trace.ints("x") == []
        assert trace.bits("x") == []
        assert trace.values("x") == []
        assert trace.cycles == 0

    def test_vector_signals_in_vcd(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..4] OF boolean;
                                OUT y: ARRAY [1..4] OF boolean) IS
            BEGIN y := NOT a END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator()
        trace = Trace(["a", "y"])
        sim.attach_trace(trace)
        sim.poke("a", 5)
        sim.step()
        vcd = trace.to_vcd()
        assert "$var wire 4" in vcd
        assert any(l.startswith("b") for l in vcd.splitlines())

    def test_vcd_vector_msb_first(self):
        """Zeus index 1 is the LSB; VCD vectors print MSB first."""
        trace = Trace(["v"])
        # 5 = LSB-first [1, 0, 1, 0]  ->  VCD "b0101".
        trace.history["v"].append(
            [Logic.ONE, Logic.ZERO, Logic.ONE, Logic.ZERO]
        )
        trace.cycles = 1
        vcd = trace.to_vcd()
        assert any(l.startswith("b0101 ") for l in vcd.splitlines())

    def test_vcd_idents_unique_past_94_signals(self):
        """More signals than printable ident characters: codes go
        multi-character and must stay unique."""
        paths = [f"s{i}" for i in range(120)]
        trace = Trace(paths)
        for p in paths:
            trace.history[p].append([Logic.ZERO])
        trace.cycles = 1
        vcd = trace.to_vcd()
        idents = [
            line.split()[3]
            for line in vcd.splitlines()
            if line.startswith("$var")
        ]
        assert len(idents) == 120
        assert len(set(idents)) == 120
        assert any(len(i) > 1 for i in idents)

    def test_bound_sampling_matches_peek(self):
        """The index-based fast path gives byte-identical samples to the
        old peek()-based path."""
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator()
        fast = Trace(["en", "q0", "q1", "c.r0.in"])
        sim.attach_trace(fast)     # bound via attach_trace
        slow = Trace(["en", "q0", "q1", "c.r0.in"])
        sim._traces.append(slow)   # unbound: falls back to peek()
        assert fast._bound is not None and slow._bound is None
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1); sim.step(6)
        assert fast.history == slow.history
