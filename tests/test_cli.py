"""CLI driver tests (zeusc)."""

import pytest

from repro.cli import main


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


class TestExamples:
    def test_lists_builtins(self, capsys):
        code, out, _ = run(["examples"], capsys)
        assert code == 0
        assert "blackjack" in out and "htree" in out


class TestCheck:
    def test_clean_builtin(self, capsys):
        code, out, _ = run(["check", "--builtin", "adders"], capsys)
        assert code == 0
        assert "0 error(s)" in out

    def test_bad_file_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.zeus"
        bad.write_text(
            "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS\n"
            "SIGNAL p: boolean;\n"
            "BEGIN p := 1; p := 0; y := a; * := p END;\n"
            "SIGNAL u: t;\n"
        )
        code, out, _ = run(["check", "--lenient", str(bad)], capsys)
        assert code == 2
        assert "unconditional" in out

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "syn.zeus"
        bad.write_text("TYPE = ;")
        code, _, err = run(["check", str(bad)], capsys)
        assert code == 2
        assert "error" in err

    def test_unknown_builtin(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--builtin", "nonexistent"])

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit):
            main(["check"])


class TestStats:
    def test_stats_output(self, capsys):
        code, out, _ = run(["stats", "--builtin", "mux4"], capsys)
        assert code == 0
        assert "nets" in out
        assert "IN" in out and "OUT" in out


class TestSim:
    def test_adder_simulation(self, capsys):
        code, out, _ = run(
            [
                "sim", "--builtin", "adders", "--cycles", "2",
                "--poke", "a=5", "--poke", "b=9", "--poke", "cin=0",
            ],
            capsys,
        )
        assert code == 0
        assert "14" in out

    def test_poke_at_cycle(self, capsys):
        code, out, _ = run(
            [
                "sim", "--builtin", "adders", "--cycles", "4",
                "--poke", "a=1", "--poke", "b=0", "--poke", "cin=0",
                "--poke", "b=3@2",
            ],
            capsys,
        )
        assert code == 0
        # sum transitions from 1 to 4 at cycle 2.
        assert " 1" in out and " 4" in out

    def test_vcd_output(self, tmp_path, capsys):
        vcd = tmp_path / "out.vcd"
        code, out, _ = run(
            [
                "sim", "--builtin", "adders", "--cycles", "2",
                "--poke", "a=1", "--poke", "b=2", "--poke", "cin=1",
                "--vcd", str(vcd),
            ],
            capsys,
        )
        assert code == 0
        assert vcd.exists()
        assert "$enddefinitions" in vcd.read_text()

    def test_watch_specific_signal(self, capsys):
        code, out, _ = run(
            [
                "sim", "--builtin", "adders", "--cycles", "1",
                "--poke", "a=2", "--poke", "b=2", "--poke", "cin=0",
                "--watch", "s",
            ],
            capsys,
        )
        assert code == 0
        assert out.strip().startswith("s")


class TestLayout:
    def test_layout_output(self, capsys):
        code, out, _ = run(["layout", "--builtin", "htree"], capsys)
        assert code == 0
        assert "area 16" in out

    def test_layout_svg(self, tmp_path, capsys):
        svg = tmp_path / "plan.svg"
        code, out, _ = run(
            ["layout", "--builtin", "htree", "--svg", str(svg)], capsys
        )
        assert code == 0
        assert svg.read_text().startswith("<svg")


class TestAnalyze:
    def test_report(self, capsys):
        code, out, _ = run(["analyze", "--builtin", "adders"], capsys)
        assert code == 0
        assert "logic_depth" in out
        assert "critical path" in out

    def test_cone(self, capsys):
        code, out, _ = run(
            ["analyze", "--builtin", "adders", "--cone", "cout"], capsys
        )
        assert code == 0
        assert "cone of cout" in out
        assert "adder.a[4]" in out

    def test_unknown_cone_signal(self, capsys):
        code, _, err = run(
            ["analyze", "--builtin", "adders", "--cone", "nope"], capsys
        )
        assert code == 1


class TestDot:
    def test_stdout(self, capsys):
        code, out, _ = run(["dot", "--builtin", "section8"], capsys)
        assert code == 0
        assert out.startswith("digraph")

    def test_output_file(self, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        code, out, _ = run(
            ["dot", "--builtin", "section8", "-o", str(dot)], capsys
        )
        assert code == 0
        assert dot.read_text().startswith("digraph")

    def test_no_synthetic(self, capsys):
        _, full, _ = run(["dot", "--builtin", "mux4"], capsys)
        _, clean, _ = run(["dot", "--builtin", "mux4", "--no-synthetic"], capsys)
        assert len(clean) < len(full)


class TestZeusFiles:
    """The shipped .zeus sources compile through the file path."""

    def test_all_shipped_files_check_clean(self, capsys):
        import glob
        import os

        files = sorted(glob.glob(
            os.path.join(os.path.dirname(__file__), "..", "examples", "zeus", "*.zeus")
        ))
        assert len(files) >= 8
        for path in files:
            code, out, _ = run(["check", path], capsys)
            assert code == 0, path

    def test_compile_file_api(self):
        import os

        import repro

        path = os.path.join(
            os.path.dirname(__file__), "..", "examples", "zeus", "adders.zeus"
        )
        circuit = repro.compile_file(path, top="adder")
        assert circuit.stats()["gates"] == 20


FORMAL_OR = """
TYPE t = COMPONENT (IN a, b: boolean; OUT z: boolean) IS
BEGIN
    z := OR(a, b)
END;
SIGNAL u: t;
"""

FORMAL_AND = FORMAL_OR.replace("OR(a, b)", "AND(a, b)")


class TestProveCLI:
    def test_proved_clean(self, capsys):
        code, out, _ = run(
            ["prove", "--builtin", "adders", "--top", "adder4"], capsys)
        assert code == 0
        assert "PROVED" in out

    def test_counterexample_exits_2(self, capsys):
        code, out, _ = run(
            ["prove", "--builtin", "section8", "--lenient"], capsys)
        assert code == 2
        assert "COUNTEREXAMPLE" in out
        assert "replay: confirmed" in out

    def test_json_output_is_valid_proof_schema(self, tmp_path, capsys):
        import json

        from repro.formal import validate_proof_report

        out_file = tmp_path / "proof.json"
        code, out, _ = run(
            ["prove", "--builtin", "section8", "--lenient",
             "--format", "json", "-o", str(out_file)], capsys)
        assert code == 2
        data = json.loads(out_file.read_text())
        validate_proof_report(data)
        assert data["mode"] == "prove"

    def test_metrics_report_has_formal_section(self, tmp_path, capsys):
        import json

        from repro.obs import validate_report

        metrics = tmp_path / "metrics.json"
        code, _, _ = run(
            ["prove", "--builtin", "adders", "--top", "adder4",
             "--metrics", str(metrics)], capsys)
        assert code == 0
        data = json.loads(metrics.read_text())
        validate_report(data)
        assert data["formal"]["mode"] == "prove"
        assert data["formal"]["refuted"] == 0

    def test_bad_property_exits_2(self, capsys):
        code, _, err = run(
            ["prove", "--builtin", "adders", "--top", "adder4",
             "--prop", "frobnicate"], capsys)
        assert code == 2
        assert "error" in err

    def test_werror_promotes_unknown(self, capsys):
        code, _, _ = run(
            ["prove", "--builtin", "blackjack", "--lenient",
             "--depth", "0", "--budget", "10", "--no-induction",
             "--prop", "no-conflict", "--werror"], capsys)
        assert code == 1


class TestEquivCLI:
    def test_paper_adders_equivalent(self, capsys):
        code, out, _ = run(
            ["equiv", "--builtin", "adders", "--top", "adder4",
             "--builtin2", "adders", "--top2", "adder"], capsys)
        assert code == 0
        assert "PROVED-EQUIVALENT" in out

    def test_inequivalent_pair_exits_2(self, tmp_path, capsys):
        fa = tmp_path / "or.zeus"
        fb = tmp_path / "and.zeus"
        fa.write_text(FORMAL_OR)
        fb.write_text(FORMAL_AND)
        code, out, _ = run(["equiv", str(fa), str(fb)], capsys)
        assert code == 2
        assert "COUNTEREXAMPLE" in out
        assert "replay: confirmed" in out

    def test_sample_cross_check(self, capsys):
        code, out, _ = run(
            ["equiv", "--builtin", "trees", "--top", "a",
             "--builtin2", "trees", "--top2", "b",
             "--sample", "16", "--seed", "3"], capsys)
        assert code == 0
        assert "seed 3" in out and "agree" in out

    def test_interface_mismatch_exits_2(self, capsys):
        code, _, err = run(
            ["equiv", "--builtin", "adders", "--top", "adder4",
             "--builtin2", "trees", "--top2", "a"], capsys)
        assert code == 2
        assert "interfaces differ" in err

    def test_missing_second_design_exits_2(self, tmp_path, capsys):
        fa = tmp_path / "or.zeus"
        fa.write_text(FORMAL_OR)
        with pytest.raises(SystemExit):
            main(["equiv", str(fa)])


class TestElaborationExitCodes:
    """Every subcommand exits 2 (never a traceback, never a fake 1) on
    a design that fails to parse or elaborate."""

    BAD = "TYPE t = COMPONENT (IN a: boolean OUT z: boolean) IS\nBEGIN z := a END;\nSIGNAL u: t;\n"

    @pytest.mark.parametrize(
        "cmd", ["check", "lint", "stats", "sim", "profile", "layout",
                "analyze", "dot", "prove"])
    def test_broken_source_exits_2(self, cmd, tmp_path, capsys):
        bad = tmp_path / "broken.zeus"
        bad.write_text(self.BAD)
        code, _, err = run([cmd, str(bad)], capsys)
        assert code == 2
        assert "error" in err

    def test_equiv_broken_source_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.zeus"
        bad.write_text(self.BAD)
        code, _, err = run(
            ["equiv", str(bad), "--builtin2", "adders", "--top2",
             "adder4"], capsys)
        assert code == 2
        assert "error" in err

    def test_sim_unknown_poke_exits_2(self, capsys):
        code, _, err = run(
            ["sim", "--builtin", "adders", "--poke", "nosuch=1"], capsys)
        assert code == 2
        assert "nosuch" in err

    def test_profile_unknown_poke_exits_2(self, capsys):
        code, _, err = run(
            ["profile", "--builtin", "adders", "--poke", "nosuch=1"],
            capsys)
        assert code == 2
        assert "nosuch" in err
