"""zeuslint tests: the driver-exclusivity prover (differential against
the simulator's runtime multi-assignment check), the structural passes,
suppression comments, the zeus.lint/1 report schema, and the CLI."""

import json
import random

import pytest

import repro
from repro.cli import main
from repro.lang.errors import Severity
from repro.lint import (
    LintConfig,
    RULES,
    run_lint,
    validate_lint_report,
)
from repro.lint.suppress import parse_suppressions


def compile_lenient(text, name="t"):
    return repro.compile_text(text, name=name, strict=False)


def lint_of(text, config=None, name="t"):
    return run_lint(compile_lenient(text, name), config)


def rules_of(report):
    return {f.rule for f in report.findings if not f.suppressed}


def conflict_program(n_guards):
    """The fuzz suite's deliberately conflicting shape (see
    test_fuzz.test_lenient_mode_never_crashes_on_conflicts)."""
    ins = ", ".join(f"g{k}" for k in range(n_guards))
    stmts = "\n".join(
        f"    IF g{k} THEN z := {k % 2} END;" for k in range(n_guards)
    )
    return f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
{stmts}
    y := g0
END;
SIGNAL u: t;
"""


EXCLUSIVE_NOT = """
TYPE t = COMPONENT (IN s: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF s THEN z := 1 END;
    IF NOT s THEN z := 0 END;
    y := s
END;
SIGNAL u: t;
"""


class TestProverVerdicts:
    def test_complementary_guards_proved_exclusive(self):
        report = lint_of(EXCLUSIVE_NOT)
        assert report.prover.proved_exclusive == 1
        assert report.prover.proved_conflicting == 0
        assert report.prover.unknown == 0
        assert report.errors == 0

    def test_one_hot_decode_proved_exclusive(self):
        circuit = repro.compile_text(
            repro.stdlib.programs.ALL_PROGRAMS["mux4"],
            name="mux4", strict=False)
        report = run_lint(circuit)
        assert report.prover.proved_conflicting == 0
        assert report.prover.unknown == 0
        assert report.prover.proved_exclusive >= 1

    def test_independent_guards_proved_conflicting(self):
        report = lint_of(conflict_program(2))
        assert report.prover.proved_conflicting == 1
        assert "driver-conflict" in rules_of(report)
        assert report.exit_code() == 2

    def test_conflict_witness_is_over_inputs(self):
        report = lint_of(conflict_program(2))
        finding = next(f for f in report.findings
                       if f.rule == "driver-conflict")
        witness = finding.data["witness"]
        assert witness  # non-empty, named input assignment
        assert all(k.startswith("u.g") for k in witness)

    def test_overlapping_and_guards_conflict(self):
        # Guards AND(a, b) vs a: both 1 when a=b=1.
        report = lint_of("""
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF AND(a, b) THEN z := 1 END;
    IF a THEN z := 0 END;
    y := a
END;
SIGNAL u: t;
""")
        assert report.prover.proved_conflicting == 1

    def test_disjoint_and_guards_exclusive(self):
        # AND(a, b) vs AND(a, NOT b): needs the case split, not just literals.
        report = lint_of("""
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF AND(a, b) THEN z := 1 END;
    IF AND(a, NOT b) THEN z := 0 END;
    y := a
END;
SIGNAL u: t;
""")
        assert report.prover.proved_exclusive == 1
        assert report.prover.proved_conflicting == 0

    def test_exhausted_budget_reports_unknown(self):
        config = LintConfig(prover_budget=1)
        report = lint_of(conflict_program(3), config)
        assert report.prover.unknown == 1
        assert "driver-unproved" in rules_of(report)
        # UNKNOWN is a warning, not an error: runtime stays the oracle.
        assert report.errors == 0

    def test_stdlib_corpus_fully_classified(self):
        """Acceptance: the prover classifies every multi-driver
        multiplex net in the bundled paper programs -- no UNKNOWNs."""
        for name, text in repro.stdlib.programs.ALL_PROGRAMS.items():
            circuit = repro.compile_text(text, name=name, strict=False)
            report = run_lint(circuit)
            assert report.prover.unknown == 0, name
            for net in report.prover.nets:
                assert net.verdict in ("exclusive", "conflicting"), name


class TestProverDifferential:
    """The prover's verdicts must agree with the simulator's runtime
    multi-assignment check (the paper's 'burning transistors' rule)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_runtime_conflicts_are_flagged_statically(self, seed):
        rng = random.Random(seed)
        n_guards = rng.randint(2, 4)
        circuit = compile_lenient(conflict_program(n_guards))
        sim = circuit.simulator(strict=False)
        for vector in range(1 << n_guards):
            for k in range(n_guards):
                sim.poke(f"g{k}", (vector >> k) & 1)
            sim.step()
        assert sim.violations  # the runtime check fires...
        report = run_lint(circuit)
        flagged = rules_of(report) & {"driver-conflict", "driver-unproved"}
        assert flagged  # ...and lint saw it coming
        assert report.prover.proved_conflicting >= 1

    def test_witness_replay_triggers_runtime_violation(self):
        """Acceptance: a PROVED-CONFLICTING witness, poked into the
        simulator, reproduces the runtime violation."""
        for text in (conflict_program(2), conflict_program(4)):
            circuit = compile_lenient(text)
            report = run_lint(circuit)
            finding = next(f for f in report.findings
                           if f.rule == "driver-conflict")
            sim = circuit.simulator(strict=False)
            for key, value in finding.data["witness"].items():
                sim.poke(key, value)
            sim.step()
            assert sim.violations
            assert any(v.net == finding.net for v in sim.violations)

    def test_proved_exclusive_never_violates(self):
        """Acceptance: exhaustive simulation of a PROVED-EXCLUSIVE
        design never trips the runtime check."""
        circuit = compile_lenient(EXCLUSIVE_NOT)
        report = run_lint(circuit)
        assert report.prover.proved_exclusive == 1
        sim = circuit.simulator(strict=True)
        for value in (0, 1):
            sim.poke("s", value)
            sim.step()
        assert not sim.violations

    def test_mux4_proved_exclusive_never_violates(self):
        circuit = repro.compile_text(
            repro.stdlib.programs.ALL_PROGRAMS["mux4"],
            name="mux4", strict=False)
        report = run_lint(circuit)
        assert report.prover.proved_conflicting == 0
        assert report.prover.unknown == 0
        sim = circuit.simulator(strict=True, seed=7)
        inputs = sorted(n.name for n in circuit.netlist.nets
                        if n.is_input and not n.is_output)
        rng = random.Random(7)
        for _ in range(16):
            for name in inputs:
                sim.poke(name, rng.randint(0, 1))
            sim.step()
        assert not sim.violations

    def test_stdlib_witnesses_replay(self):
        """Every PROVED-CONFLICTING verdict on the bundled programs
        comes with a witness that really burns transistors."""
        for name, text in repro.stdlib.programs.ALL_PROGRAMS.items():
            circuit = repro.compile_text(text, name=name, strict=False)
            report = run_lint(circuit)
            for finding in report.findings:
                if finding.rule != "driver-conflict":
                    continue
                sim = circuit.simulator(strict=False)
                for key, value in finding.data["witness"].items():
                    sim.poke(key, value)
                sim.step()
                assert sim.violations, (name, finding.message)


class TestStructuralPasses:
    def test_comb_cycle_reports_path(self):
        report = lint_of("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL p: boolean;
BEGIN
    p := OR(p, a);
    y := p
END;
SIGNAL u: t;
""")
        finding = next(f for f in report.findings if f.rule == "comb-cycle")
        assert finding.severity is Severity.ERROR
        assert "->" in finding.message
        assert "u.p" in finding.data["cycle"]

    def test_write_only_signal(self):
        report = lint_of("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL unused: boolean;
BEGIN
    unused := a;
    y := a
END;
SIGNAL u: t;
""")
        finding = next(f for f in report.findings if f.rule == "write-only")
        assert "u.unused" in finding.message

    def test_write_only_excludes_out_ports(self):
        report = lint_of("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
BEGIN
    y := a
END;
SIGNAL u: t;
""")
        assert "write-only" not in rules_of(report)

    def test_checker_delegates_write_only(self):
        """Satellite: zeusc check emits the same write-only warning."""
        circuit = compile_lenient("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    SIGNAL unused: boolean;
BEGIN
    unused := a;
    y := a
END;
SIGNAL u: t;
""")
        messages = [d.message for d in circuit.diagnostics.warnings]
        assert any("assigned but never read" in m for m in messages)

    def test_dead_driver_constant_guard(self):
        report = lint_of("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF AND(a, NOT a) THEN z := 1 END;
    y := a
END;
SIGNAL u: t;
""")
        finding = next(f for f in report.findings if f.rule == "dead-driver")
        assert finding.data["constant"] == 0

    def test_reg_no_reset_and_reset_detection(self):
        noreset = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert "reg-no-reset" in rules_of(noreset)
        reset = lint_of("""
TYPE t = COMPONENT (IN d, clk, rst: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF rst THEN r.in := 0 END;
    IF AND(clk, NOT rst) THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert "reg-no-reset" not in rules_of(reset)

    def test_reg_array_findings_are_grouped(self):
        circuit = repro.compile_text(
            repro.stdlib.programs.ALL_PROGRAMS["memory"],
            name="memory", strict=False)
        report = run_lint(circuit)
        regs = [f for f in report.findings if f.rule == "reg-no-reset"]
        assert len(regs) == 1
        assert regs[0].data["registers"] == 128
        assert "mem.ram[*][*]" in regs[0].message

    def test_undef_reachability_from_unreset_reg(self):
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        finding = next(f for f in report.findings
                       if f.rule == "undef-reachability")
        assert finding.data["kind"] == "no reset"
        assert "u.q" in finding.message

    def test_fanout_and_depth_limits(self):
        config = LintConfig(max_fanout=1, max_depth=1)
        report = lint_of("""
TYPE t = COMPONENT (IN a, b: boolean; OUT x, y, z: boolean) IS
BEGIN
    x := NOT AND(a, b);
    y := OR(a, AND(a, b));
    z := a
END;
SIGNAL u: t;
""", config)
        assert "fanout-limit" in rules_of(report)
        assert "logic-depth-limit" in rules_of(report)


class TestConfigAndSuppression:
    def test_unknown_rule_rejected(self):
        config = LintConfig()
        with pytest.raises(ValueError):
            config.set_severity("nosuch", "error")
        with pytest.raises(ValueError):
            config.set_severity("write-only", "loud")

    def test_all_baseline_with_override(self):
        config = LintConfig()
        config.set_severity("all", "off")
        config.set_severity("driver-conflict", "error")
        report = lint_of(conflict_program(2), config)
        assert rules_of(report) == {"driver-conflict"}

    def test_severity_override_relevels(self):
        config = LintConfig()
        config.set_severity("reg-no-reset", "error")
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert report.errors == 0  # default config: a warning
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""", config)
        assert report.errors >= 1
        assert report.exit_code() == 2

    def test_werror_exit_code(self):
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert report.warnings >= 1
        assert report.exit_code() == 0
        assert report.exit_code(werror=True) == 1

    def test_pragma_suppresses_next_line(self):
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    <* lint: off reg-no-reset *>
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert "reg-no-reset" not in rules_of(report)
        assert report.suppressed == 1
        suppressed = next(f for f in report.findings if f.suppressed)
        assert suppressed.rule == "reg-no-reset"

    def test_pragma_same_line_and_star(self):
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    SIGNAL r: REG; <* lint: off *>
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert "reg-no-reset" not in rules_of(report)
        assert report.suppressed == 1

    def test_pragma_other_rule_does_not_suppress(self):
        report = lint_of("""
TYPE t = COMPONENT (IN d, clk: boolean; OUT q: boolean) IS
    <* lint: off write-only *>
    SIGNAL r: REG;
BEGIN
    IF clk THEN r.in := d END;
    q := r.out
END;
SIGNAL u: t;
""")
        assert "reg-no-reset" in rules_of(report)
        assert report.suppressed == 0

    def test_parse_suppressions_rule_lists(self):
        circuit = compile_lenient("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    <* lint: off write-only, reg-no-reset *>
    SIGNAL p: boolean;
BEGIN
    p := a;
    y := a
END;
SIGNAL u: t;
""")
        design = circuit.design
        by_line = parse_suppressions(design.source, design.program.comments)
        assert by_line == {4: {"write-only", "reg-no-reset"}}

    def test_ordinary_comments_are_not_pragmas(self):
        circuit = compile_lenient("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
    <* just a note *>
    SIGNAL p: boolean;
BEGIN
    p := a;
    y := a
END;
SIGNAL u: t;
""")
        design = circuit.design
        assert design.program.comments  # the lexer recorded the trivia
        assert parse_suppressions(
            design.source, design.program.comments) == {}


class TestReportSchema:
    def test_json_roundtrip_validates(self):
        report = lint_of(conflict_program(2))
        payload = json.loads(report.render_json())
        validate_lint_report(payload)  # must not raise
        assert payload["schema"] == "zeus.lint/1"
        assert payload["summary"]["errors"] == 1
        assert payload["prover"]["proved_conflicting"] == 1
        finding = payload["findings"][0]
        assert finding["code"] == "ZL001"
        assert finding["line"] > 0

    def test_validator_rejects_bad_reports(self):
        report = lint_of(EXCLUSIVE_NOT).to_dict()
        good = json.loads(json.dumps(report))
        validate_lint_report(good)
        for mutate in (
            lambda r: r.update(schema="zeus.lint/2"),
            lambda r: r.pop("summary"),
            lambda r: r["summary"].update(errors="many"),
            lambda r: r["prover"]["nets"][0].update(verdict="maybe"),
        ):
            bad = json.loads(json.dumps(report))
            mutate(bad)
            with pytest.raises(ValueError):
                validate_lint_report(bad)

    def test_sarif_render(self):
        report = lint_of(conflict_program(2))
        sarif = json.loads(report.render_sarif())
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "zeuslint"
        assert any(res["ruleId"] == "ZL001" for res in run["results"])
        assert all("message" in res for res in run["results"])

    def test_rule_registry_is_stable(self):
        codes = [rule.code for rule in RULES.values()]
        assert len(codes) == len(set(codes))  # codes are unique
        assert {"driver-conflict", "driver-unproved", "comb-cycle",
                "write-only", "dead-driver", "reg-no-reset",
                "undef-reachability", "fanout-limit",
                "logic-depth-limit"} <= set(RULES)


class TestLintCli:
    def run(self, argv, capsys):
        code = main(argv)
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_clean_builtin_exits_zero(self, capsys):
        code, out, _ = self.run(["lint", "--builtin", "mux4"], capsys)
        assert code == 0
        assert "1 exclusive" in out

    def test_conflicting_builtin_exits_two(self, capsys):
        code, out, _ = self.run(
            ["lint", "--builtin", "section8", "--lenient"], capsys)
        assert code == 2
        assert "driver-conflict" in out
        assert "burn transistors" in out

    def test_werror_promotes_warnings(self, capsys):
        code, _, _ = self.run(
            ["lint", "--builtin", "memory", "--lenient"], capsys)
        assert code == 0
        code, _, _ = self.run(
            ["lint", "--builtin", "memory", "--lenient", "--werror"], capsys)
        assert code == 1

    def test_disable_rules(self, capsys):
        code, _, _ = self.run(
            ["lint", "--builtin", "section8", "--lenient",
             "--disable", "driver-conflict",
             "--disable", "reg-no-reset",
             "--disable", "undef-reachability"], capsys)
        assert code == 0

    def test_error_promotion(self, capsys):
        code, _, _ = self.run(
            ["lint", "--builtin", "memory", "--lenient",
             "-E", "reg-no-reset"], capsys)
        assert code == 2

    def test_json_format(self, tmp_path, capsys):
        out_file = tmp_path / "lint.json"
        code, _, _ = self.run(
            ["lint", "--builtin", "mux4", "--format", "json",
             "-o", str(out_file)], capsys)
        assert code == 0
        payload = json.loads(out_file.read_text())
        validate_lint_report(payload)

    def test_metrics_includes_lint_section(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code, _, _ = self.run(
            ["lint", "--builtin", "section8", "--lenient",
             "--metrics", str(metrics)], capsys)
        assert code == 2
        payload = json.loads(metrics.read_text())
        assert payload["lint"]["errors"] == 1
        assert payload["lint"]["prover"]["proved_conflicting"] == 1
        assert "lint" in payload["compile"]["phases"]

    def test_list_rules(self, capsys):
        code, out, _ = self.run(["lint", "--list-rules"], capsys)
        assert code == 0
        assert "ZL001" in out and "driver-conflict" in out

    def test_unknown_rule_exits_two(self, capsys):
        code, _, err = self.run(
            ["lint", "--builtin", "mux4", "-W", "nosuch"], capsys)
        assert code == 2
        assert "unknown lint rule" in err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "syn.zeus"
        bad.write_text("TYPE = ;")
        code, _, err = self.run(["lint", str(bad)], capsys)
        assert code == 2
        assert "error" in err

    def test_check_werror(self, tmp_path, capsys):
        warny = tmp_path / "w.zeus"
        warny.write_text(
            "TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS\n"
            "    SIGNAL unused: boolean;\n"
            "BEGIN\n"
            "    unused := a;\n"
            "    y := a\n"
            "END;\n"
            "SIGNAL u: t;\n"
        )
        code, _, _ = self.run(["check", str(warny)], capsys)
        assert code == 0
        code, _, _ = self.run(["check", "--werror", str(warny)], capsys)
        assert code == 1
