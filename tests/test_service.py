"""The zeusd service layer: compile cache, process-pool shards, lane
sessions / the session multiplexer, the HTTP daemon end to end, the
thread-safety of the compile path, and the CLI's structured JSON
errors.

The differential heart is session isolation: a lane-multiplexed
session on one shared batched simulator must be *bit-identical* --
peeks, registers, violations, RANDOM streams -- to an isolated scalar
run with the session's seed, no matter how other sessions interleave
or detach around it.
"""

import json
import threading
import time

import pytest

import repro
from repro.cli import main as cli_main
from repro.core.simulator import Simulator
from repro.obs import spans as _spans
from repro.obs import validate_report
from repro.service import (
    CompileCache,
    LaneMux,
    PoolSaturated,
    PoolTimeout,
    SessionError,
    ShardPool,
    ZeusClient,
    cache_key,
    serve_in_thread,
)
from repro.stdlib.programs import ALL_PROGRAMS

HALF = """
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
    s := XOR(a,b);
    cout := AND(a,b)
END;
SIGNAL h: halfadder;
"""

CONFLICT = """
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
SIGNAL p: boolean;
BEGIN
    IF a THEN p := 1 END;
    IF b THEN p := 0 END;
    y := p
END;
SIGNAL u: t;
"""

BLACKJACK = ALL_PROGRAMS["blackjack"]


def run_cli(argv, capsys):
    code = cli_main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


# -- the content-hash compile cache --------------------------------------


class TestCompileCache:
    def test_key_covers_every_compile_input(self):
        base = cache_key(HALF)
        assert cache_key(HALF) == base
        assert cache_key(HALF + " ") != base
        assert cache_key(HALF, top="h") != base
        assert cache_key(HALF, strict=False) != base

    def test_hit_returns_same_objects(self):
        cache = CompileCache(capacity=4)
        entry, hit = cache.get_or_compile(HALF)
        assert not hit
        again, hit = cache.get_or_compile(HALF)
        assert hit
        assert again is entry
        assert again.circuit is entry.circuit

    def test_schedule_captured_once_and_shared(self):
        cache = CompileCache(capacity=4)
        entry, _ = cache.get_or_compile(HALF)
        sim1 = entry.simulator(engine="levelized")
        sim2 = entry.simulator(engine="batched", lanes=4)
        assert sim1._schedule is not None
        assert sim2._schedule is sim1._schedule
        # ... and the shared schedule still computes correctly.
        sim2.poke("a", 1)
        sim2.poke("b", 1)
        sim2.step()
        assert str(sim2.peek_bit("cout")) == "1"

    def test_lru_eviction(self):
        cache = CompileCache(capacity=2)
        cache.get_or_compile(HALF)
        cache.get_or_compile(CONFLICT, strict=False)
        cache.get_or_compile(HALF)  # freshen HALF
        cache.get_or_compile(BLACKJACK, "bj", strict=False)  # evicts CONFLICT
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        _, hit = cache.get_or_compile(HALF)
        assert hit
        _, hit = cache.get_or_compile(CONFLICT, strict=False)
        assert not hit  # was evicted

    def test_compile_errors_are_not_cached(self):
        cache = CompileCache(capacity=4)
        for _ in range(2):
            with pytest.raises(repro.ZeusError):
                cache.get_or_compile("SIGNAL h: nosuch;")
        assert len(cache) == 0
        assert cache.stats()["misses"] == 2

    def test_hit_rate(self):
        cache = CompileCache(capacity=4)
        cache.get_or_compile(HALF)
        cache.get_or_compile(HALF)
        cache.get_or_compile(HALF)
        assert cache.stats()["hit_rate"] == pytest.approx(2 / 3)


# -- compile-path thread safety (the concurrency audit's regression) -----


def _corpus_fingerprint():
    """Compile the whole stdlib corpus and fingerprint every output
    that could betray cross-compile interference."""
    out = {}
    for name in sorted(ALL_PROGRAMS):
        circuit = repro.compile_text(
            ALL_PROGRAMS[name], name=name, strict=False
        )
        out[name] = (
            circuit.name,
            circuit.netlist.describe(),
            tuple(sorted(circuit.netlist.stats().items())),
            tuple(sorted(circuit.netlist.signals)),
            tuple(
                d.render(circuit.design.source)
                for d in circuit.diagnostics.diagnostics
            ),
        )
    return out


class TestConcurrentCompile:
    def test_eight_threads_identical_to_serial(self):
        serial = _corpus_fingerprint()
        results = [None] * 8
        errors = []

        def worker(i):
            try:
                results[i] = _corpus_fingerprint()
            except Exception as exc:  # pragma: no cover - the failure
                errors.append((i, exc))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i, got in enumerate(results):
            assert got == serial, f"thread {i} diverged from serial"

    def test_shared_registry_nesting_survives_threads(self):
        # All threads record into ONE shared registry; the open-span
        # stack is context-local, so no thread ever sees another's
        # nesting (previously this corrupted span paths/depths).
        registry = _spans.SpanRegistry()

        def worker():
            with _spans.use_registry(registry):
                for _ in range(5):
                    repro.compile_text(HALF)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        compiles = [s for s in registry.spans if s.name == "compile"]
        assert len(compiles) == 40
        # Every compile span is a root span in its own context.
        assert all(s.depth == 0 and s.path == "compile" for s in compiles)
        parses = [s for s in registry.spans if s.name == "parse"]
        assert all(s.path == "compile/parse" for s in parses)


# -- the core lane-session primitives ------------------------------------


def _scalar_ref(circuit, seed, cycles, pokes=()):
    sim = Simulator(
        circuit.design, strict=False, seed=seed, engine="levelized"
    )
    for path, value in pokes:
        sim.poke(path, value)
    sim.step(cycles)
    return sim


@pytest.mark.parametrize("engine", ["batched", "codegen"])
class TestStepLanes:
    def test_interleaved_lanes_match_scalar(self, engine):
        circuit = repro.compile_text(BLACKJACK, "bj", strict=False)
        sim = Simulator(
            circuit.design, strict=False, engine=engine, lanes=8
        )
        seeds = {0: 11, 1: 22, 2: 33}
        for lane, seed in seeds.items():
            sim.reset_lane(lane, seed=seed)
        sim.step_lanes([0], 5)
        sim.step_lanes([1], 2)
        sim.step_lanes([0, 2], 2)
        sim.step_lanes([1], 5)
        sim.step_lanes([2], 5)
        # all three lanes have now run 7 cycles
        for lane, seed in seeds.items():
            ref = _scalar_ref(circuit, seed, 7)
            assert sim.peek_lane("bj.ycard", lane) == ref.peek("bj.ycard")
            assert sim.registers(lane=lane) == ref.registers()

    def test_frozen_lane_rng_does_not_advance(self, engine):
        circuit = repro.compile_text(BLACKJACK, "bj", strict=False)
        sim = Simulator(
            circuit.design, strict=False, engine=engine, lanes=4
        )
        sim.reset_lane(0, seed=7)
        sim.reset_lane(1, seed=7)
        # Lane 1 sits frozen through 20 of lane 0's passes; identical
        # seeds must still produce identical streams afterwards.
        sim.step_lanes([0], 20)
        sim.step_lanes([1], 20)
        assert sim.peek_lane("bj.ycard", 1) == sim.peek_lane("bj.ycard", 0)
        assert sim.registers(lane=1) == sim.registers(lane=0)

    def test_poke_lane_is_lane_local(self, engine):
        circuit = repro.compile_text(HALF)
        sim = Simulator(
            circuit.design, strict=False, engine=engine, lanes=4
        )
        sim.poke_lane("a", 0, 1)
        sim.poke_lane("b", 0, 1)
        sim.poke_lane("a", 1, 1)
        sim.poke_lane("b", 1, 0)
        sim.step_lanes([0, 1], 1)
        assert str(sim.peek_lane("cout", 0)[0]) == "1"
        assert str(sim.peek_lane("cout", 1)[0]) == "0"
        sim.unpoke_lane("a", 0)
        sim.step_lanes([0], 1)
        assert str(sim.peek_lane("cout", 0)[0]) == "UNDEF"
        # lane 1's poke survived lane 0's unpoke
        sim.step_lanes([1], 1)
        assert str(sim.peek_lane("cout", 1)[0]) == "0"

    def test_violations_only_on_active_lanes(self, engine):
        circuit = repro.compile_text(CONFLICT, strict=False)
        sim = Simulator(
            circuit.design, strict=False, engine=engine, lanes=4
        )
        for lane in (0, 1):
            sim.poke_lane("a", lane, 1)
            sim.poke_lane("b", lane, 1)
        fresh = sim.step_lanes([0], 1)
        assert [v.lane for v in fresh] == [0]
        assert [v.lane for v in sim.violations] == [0]
        # the frozen conflicted lane fires when IT steps
        fresh = sim.step_lanes([1], 1)
        assert [v.lane for v in fresh] == [1]

    def test_reset_lane_scrubs_state(self, engine):
        circuit = repro.compile_text(HALF)
        sim = Simulator(
            circuit.design, strict=False, engine=engine, lanes=4
        )
        sim.poke_lane("a", 2, 1)
        sim.poke_lane("b", 2, 1)
        sim.step_lanes([2], 1)
        assert str(sim.peek_lane("cout", 2)[0]) == "1"
        sim.reset_lane(2)
        sim.step_lanes([2], 1)
        assert str(sim.peek_lane("cout", 2)[0]) == "UNDEF"


class TestStepLanesContract:
    def test_scalar_engines_reject_lane_sessions(self):
        circuit = repro.compile_text(HALF)
        sim = Simulator(circuit.design, engine="levelized")
        with pytest.raises(repro.SimulationError, match="lane sessions"):
            sim.reset_lane(0)
        with pytest.raises(repro.SimulationError):
            sim.step_lanes([0], 1)

    def test_bad_lane_rejected(self):
        circuit = repro.compile_text(HALF)
        sim = Simulator(circuit.design, engine="batched", lanes=4)
        with pytest.raises(ValueError, match="out of range"):
            sim.reset_lane(4)
        with pytest.raises(ValueError):
            sim.step_lanes([9], 1)

    def test_strict_raises_on_active_lane_conflict(self):
        circuit = repro.compile_text(CONFLICT, strict=False)
        sim = Simulator(
            circuit.design, strict=True, engine="batched", lanes=4
        )
        sim.poke_lane("a", 1, 1)
        sim.poke_lane("b", 1, 1)
        sim.step_lanes([0], 1)  # conflicted lane frozen: no raise
        with pytest.raises(repro.SimulationError, match="lane 1"):
            sim.step_lanes([1], 1)


# -- the session multiplexer ---------------------------------------------


class TestLaneMux:
    def test_sessions_bit_identical_to_scalar(self):
        circuit = repro.compile_text(BLACKJACK, "bj", strict=False)
        mux = LaneMux(circuit, lanes=8)
        seeds = [101, 202, 303, 404]
        sessions = [mux.attach(seed) for seed in seeds]
        refs = [
            Simulator(
                circuit.design, strict=False, seed=seed,
                engine="levelized",
            )
            for seed in seeds
        ]
        # Interleave: lockstep rounds, ragged rounds, solo steps --
        # compare the full per-cycle RANDOM-driven stream each time.
        plan = [
            {0: 1, 1: 1, 2: 1, 3: 1},
            {0: 2, 2: 3},
            {1: 4, 3: 1},
            {0: 2, 1: 1, 2: 2, 3: 4},
        ]
        for round_ in plan:
            mux.step_many(
                {sessions[i]: n for i, n in round_.items()}
            )
            for i, n in round_.items():
                refs[i].step(n)
            for i in range(4):
                assert (
                    sessions[i].peek("bj.ycard")
                    == refs[i].peek("bj.ycard")
                )
                assert sessions[i].registers() == refs[i].registers()
        for i in range(4):
            assert sessions[i].cycle == refs[i].cycle

    def test_detach_mid_run_does_not_perturb_neighbors(self):
        circuit = repro.compile_text(BLACKJACK, "bj", strict=False)
        mux = LaneMux(circuit, lanes=4)
        keep = mux.attach(1)
        victim = mux.attach(2)
        other = mux.attach(3)
        mux.step_many({keep: 3, victim: 3, other: 3})
        victim.detach()
        mux.step_many({keep: 4, other: 2})
        ref_keep = _scalar_ref(circuit, 1, 7)
        ref_other = _scalar_ref(circuit, 3, 5)
        assert keep.peek("bj.ycard") == ref_keep.peek("bj.ycard")
        assert keep.registers() == ref_keep.registers()
        assert other.peek("bj.ycard") == ref_other.peek("bj.ycard")
        assert other.registers() == ref_other.registers()
        # the vacated lane is leased out fresh
        fresh = mux.attach(2)
        assert fresh.lane == victim.lane
        mux.step_many({fresh: 3})
        ref_fresh = _scalar_ref(circuit, 2, 3)
        assert fresh.peek("bj.ycard") == ref_fresh.peek("bj.ycard")

    def test_violations_restamped_into_session_frame(self):
        circuit = repro.compile_text(CONFLICT, strict=False)
        mux = LaneMux(circuit, lanes=4)
        clean = mux.attach(0)
        dirty = mux.attach(0)
        mux.step_many({clean: 3})  # desynchronize the shared cycle
        dirty.poke("a", 1)
        dirty.poke("b", 1)
        mux.step_many({dirty: 2, clean: 2})
        ref = _scalar_ref(circuit, 0, 2, pokes=[("a", 1), ("b", 1)])
        assert [(v.cycle, v.net) for v in dirty.violations] == [
            (v.cycle, v.net) for v in ref.violations
        ]
        assert all(v.lane is None for v in dirty.violations)
        assert clean.violations == []

    def test_lane_exhaustion_and_reuse(self):
        circuit = repro.compile_text(HALF)
        mux = LaneMux(circuit, lanes=2)
        a = mux.attach(0)
        mux.attach(1)
        with pytest.raises(SessionError, match="no free lane"):
            mux.attach(2)
        a.detach()
        a.detach()  # idempotent
        c = mux.attach(3)
        assert c.lane == a.lane
        with pytest.raises(SessionError, match="detached"):
            a.peek("s")

    def test_detached_poke_rejected(self):
        circuit = repro.compile_text(HALF)
        mux = LaneMux(circuit, lanes=2)
        s = mux.attach(0)
        s.detach()
        with pytest.raises(SessionError):
            s.poke("a", 1)
        with pytest.raises(SessionError):
            mux.step_many({s: 1})


# -- the process-pool shard layer ----------------------------------------


def _sleep_job(seconds):
    time.sleep(seconds)
    return seconds


def _square_job(x):
    return x * x


class TestShardPool:
    def test_roundtrip(self):
        pool = ShardPool(workers=1)
        try:
            assert pool.run_sync(_square_job, 9) == 81
            stats = pool.stats()
            assert stats["submitted"] == stats["completed"] == 1
        finally:
            pool.shutdown()

    def test_saturation_sheds_load(self):
        pool = ShardPool(workers=1, max_queue=0, retry_after=2.0)
        try:
            blocker = threading.Thread(
                target=lambda: pool.run_sync(_sleep_job, 1.5)
            )
            blocker.start()
            deadline = time.time() + 5
            while pool.pending < 1 and time.time() < deadline:
                time.sleep(0.01)
            with pytest.raises(PoolSaturated) as info:
                pool.run_sync(_square_job, 2)
            assert info.value.retry_after == 2.0
            assert pool.stats()["shed"] == 1
            blocker.join()
        finally:
            pool.shutdown()

    def test_timeout(self):
        pool = ShardPool(workers=1)
        try:
            with pytest.raises(PoolTimeout):
                pool.run_sync(_sleep_job, 10, timeout=0.2)
            assert pool.stats()["timeouts"] == 1
        finally:
            pool.shutdown()


# -- the daemon, end to end over HTTP ------------------------------------


@pytest.fixture(scope="module")
def daemon():
    with serve_in_thread(lanes=6, workers=2, timeout=120) as runner:
        yield runner


@pytest.fixture()
def client(daemon):
    c = ZeusClient(daemon.port)
    yield c
    c.close()


class TestHttpService:
    def test_health(self, client):
        status, body = client.health()
        assert status == 200
        assert body["status"] == "ok"
        assert body["version"] == repro.__version__

    def test_compile_cold_then_warm(self, client):
        assert client.request("POST", "/v1/cache/clear")[0] == 200
        status, body = client.compile(HALF)
        assert status == 200
        assert body["cached"] is False
        assert body["design"]["name"] == "h"
        status, warm = client.compile(HALF)
        assert status == 200
        assert warm["cached"] is True
        assert warm["key"] == body["key"]

    def test_compile_error_is_structured_400(self, client):
        status, body = client.compile("SIGNAL h: nosuch;")
        assert status == 400
        assert body["schema"] == "zeus.error/1"
        assert body["phase"] == "elaborate"
        assert body["position"]["line"] == 1

    def test_bad_json_body_400(self, client):
        status, body = client.request("POST", "/v1/compile")
        assert status == 400
        conn = client._conn
        conn.request("POST", "/v1/compile", b"{not json",
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert b"bad JSON" in response.read()

    def test_lint(self, client):
        status, body = client.lint(HALF)
        assert status == 200
        assert body["exit_code"] == 0
        assert body["report"]["schema"].startswith("zeus.lint/")

    def test_sim(self, client):
        status, body = client.sim(
            HALF, cycles=2, pokes=[[0, "a", 1], [0, "b", 1]]
        )
        assert status == 200
        assert body["signals"]["cout"] == ["1"]
        assert body["signals"]["s"] == ["0"]
        assert body["violations"] == []

    def test_sim_unknown_signal_400(self, client):
        status, body = client.sim(HALF, pokes=[[0, "zz", 1]])
        assert status == 400
        assert "zz" in body["error"]

    def test_prove(self, client):
        status, body = client.prove(HALF, depth=2, budget=20_000)
        assert status == 200
        assert body["report"]["verdict"] == "proved"
        assert body["exit_code"] == 0

    def test_timing(self, client):
        status, body = client.timing(HALF, sat=False)
        assert status == 200
        assert body["report"]["schema"].startswith("zeus.timing/")

    def test_stream(self, client):
        lines = list(client.stream_sim(
            HALF, cycles=3, pokes=[[0, "a", 1], [1, "b", 1]],
        ))
        assert len(lines) == 4
        assert [ln["cycle"] for ln in lines[:3]] == [0, 1, 2]
        assert lines[0]["signals"]["cout"] == ["UNDEF"]
        assert lines[2]["signals"]["cout"] == ["1"]
        assert lines[3]["done"] is True

    def test_session_isolation_over_http(self, client):
        circuit = repro.compile_text(BLACKJACK, "bj", strict=False)
        _, one = client.open_session(BLACKJACK, top="bj",
                                     strict=False, seed=5)
        _, two = client.open_session(BLACKJACK, top="bj",
                                     strict=False, seed=9)
        sid1, sid2 = one["session"], two["session"]
        assert one["lane"] != two["lane"]
        client.session(sid1, "step", {"cycles": 4})
        client.session(sid2, "step", {"cycles": 2})
        # detach session 1 mid-run; session 2 must be unperturbed
        assert client.close_session(sid1)[0] == 200
        status, body = client.session(sid2, "step", {"cycles": 3})
        assert status == 200
        assert body["cycle"] == 5
        ref = _scalar_ref(circuit, 9, 5)
        _, peek = client.session(sid2, "peek", {"path": "bj.ycard"})
        assert peek["bits"] == [str(b) for b in ref.peek("bj.ycard")]
        _, regs = client.session(sid2, "registers")
        assert regs["registers"] == {
            k: str(v) for k, v in ref.registers().items()
        }
        client.close_session(sid2)

    def test_session_404s(self, client):
        assert client.session("s999", "step", {})[0] == 404
        assert client.close_session("s999")[0] == 404
        status, _ = client.request("PUT", "/v1/session/open")
        assert status in (404, 405)

    def test_pool_saturation_returns_503(self, daemon, client):
        pool = daemon.daemon.pool
        before = pool.pending
        pool.pending = pool.workers + pool.max_queue
        try:
            status, body = client.prove(HALF, depth=1)
            assert status == 503
            assert "retry_after" in body
        finally:
            pool.pending = before
        assert daemon.daemon.stats()["requests"]["shed"] >= 1

    def test_metrics_report_validates(self, client):
        client.compile(HALF)
        client.compile(HALF)
        status, report = client.metrics()
        assert status == 200
        validate_report(report)
        service = report["service"]
        assert service["cache"]["hits"] >= 1
        assert 0.0 < service["cache"]["hit_rate"] <= 1.0
        assert service["requests"]["total"] >= 2
        assert any(
            key.startswith("POST /v1/compile")
            for key in service["requests"]["by_endpoint"]
        )
        # per-request spans folded into the daemon's recent-spans ring
        assert "compile" in report
        assert any(
            s["name"] == "request" for s in report["compile"]["spans"]
        )

    def test_unknown_route_404(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("POST", "/v1/nope")[0] == 404


# -- CLI structured JSON errors (satellite 2) ----------------------------


class TestCliJsonErrors:
    @pytest.fixture()
    def bad_file(self, tmp_path):
        path = tmp_path / "bad.zeus"
        path.write_text("SIGNAL h: nosuch;\n")
        return str(path)

    @pytest.fixture()
    def unparsable_file(self, tmp_path):
        path = tmp_path / "nope.zeus"
        path.write_text("TYPE = = ;;\n")
        return str(path)

    def test_lint_json_error_payload(self, bad_file, capsys):
        code, out, err = run_cli(
            ["lint", bad_file, "--format", "json"], capsys
        )
        assert code == 2
        payload = json.loads(out)
        assert payload["schema"] == "zeus.error/1"
        assert payload["phase"] == "elaborate"
        assert payload["type"] == "ElaborationError"
        assert payload["position"]["file"] == bad_file
        assert payload["position"]["line"] == 1
        assert "error:" in err

    def test_parse_error_payload(self, unparsable_file, capsys):
        code, out, _ = run_cli(
            ["timing", unparsable_file, "--format", "json"], capsys
        )
        assert code == 2
        payload = json.loads(out)
        assert payload["schema"] == "zeus.error/1"
        assert payload["phase"] == "parse"

    def test_prove_json_error_payload(self, bad_file, capsys):
        code, out, _ = run_cli(
            ["prove", bad_file, "--format", "json"], capsys
        )
        assert code == 2
        assert json.loads(out)["schema"] == "zeus.error/1"

    def test_json_error_respects_output_file(self, bad_file, tmp_path,
                                             capsys):
        out_file = tmp_path / "err.json"
        code, _, _ = run_cli(
            ["lint", bad_file, "--format", "json", "-o", str(out_file)],
            capsys,
        )
        assert code == 2
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "zeus.error/1"

    def test_text_format_keeps_plain_stderr(self, bad_file, capsys):
        code, out, err = run_cli(["lint", bad_file], capsys)
        assert code == 2
        assert out == ""
        assert "error:" in err
