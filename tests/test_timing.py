"""zeustime: static timing analysis with SAT false-path pruning.

Covers the acceptance criteria of the subsystem:

- one levelization implementation: ``LintContext.levels``,
  ``netstats.logic_levels`` and the unit-model STA arrivals agree
  bit-for-bit on the full stdlib corpus;
- ``analyze_timing`` reports min clock period and the k worst true
  paths on every stdlib program;
- the FALSEPATH builtin's complementary-guard chain is SAT-pruned (and
  the pruning changes the reported critical path), its sensitizable
  sibling survives, and every confirmed path's witness replays through
  the real simulator;
- the ``zeusc timing`` exit-code contract (0 clean / 1 clock violated
  by a true path / 2 load errors) and the ``zeus.timing/1`` schema.
"""

import json

import pytest

import repro
from repro.cli import main
from repro.analysis import netstats
from repro.lint.context import LintContext
from repro.stdlib import programs
from repro.timing import (
    FANOUT,
    UNIT,
    TimingGraph,
    analyze_timing,
    enumerate_paths,
    get_model,
    validate_timing_report,
)


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


def _compile(name):
    return repro.compile_text(programs.ALL_PROGRAMS[name])


CORPUS = sorted(programs.ALL_PROGRAMS)


class TestLevelizationDedup:
    """One topological propagation, three consumers."""

    @pytest.mark.parametrize("name", CORPUS)
    def test_ctx_levels_match_netstats(self, name):
        circuit = _compile(name)
        ctx = LintContext(circuit.design)
        net_levels = netstats.logic_levels(circuit.netlist)
        levels = ctx.levels
        assert levels is not None
        for ci in range(ctx.n):
            canon = circuit.netlist.find(ctx.members[ci][0]).id
            assert levels[ci] == net_levels[canon], ctx.display[ci]

    @pytest.mark.parametrize("name", CORPUS)
    def test_unit_arrivals_are_the_levels(self, name):
        circuit = _compile(name)
        ctx = LintContext(circuit.design)
        graph = TimingGraph(ctx, UNIT)
        arr = graph.arrival
        assert arr is not None
        for ci in range(ctx.n):
            assert arr[ci] == ctx.levels[ci], ctx.display[ci]

    @pytest.mark.parametrize("name", CORPUS)
    def test_sta_depth_matches_logic_depth(self, name):
        # The headline acceptance criterion: unit-delay STA depth is
        # exactly the pre-existing logic_depth on the full corpus.
        circuit = _compile(name)
        report = analyze_timing(circuit, k=1, sat=False)
        assert report.worst_arrival == netstats.logic_depth(
            circuit.netlist)


class TestAnalyzeCorpus:
    @pytest.mark.parametrize("name", CORPUS)
    def test_reports_on_every_program(self, name):
        circuit = _compile(name)
        report = analyze_timing(circuit, k=3)
        validate_timing_report(report.to_dict())
        assert report.paths, name  # k-worst true paths present
        # Worst-first ordering.
        delays = [p["delay"] for p in report.paths]
        assert delays == sorted(delays, reverse=True)
        if circuit.netlist.regs:
            assert report.min_clock_period is not None
        else:
            assert report.min_clock_period is None

    def test_min_clock_period_is_worst_reg_path(self):
        circuit = _compile("blackjack")
        report = analyze_timing(circuit, k=4)
        reg_delays = [p["delay"] for p in report.paths
                      if p["kind"].endswith("2reg")]
        assert report.min_clock_period is not None
        if reg_delays:
            assert report.min_clock_period >= max(reg_delays)
        levels = netstats.register_paths(circuit.netlist)
        assert report.min_clock_period <= max(levels.values())

    def test_pop_budget_stays_pessimistic(self):
        # max_pops counts heap pops of partial suffixes, not complete
        # paths; when it trips before any reg path is enumerated the
        # report must fall back to the raw arrival bound, never claim
        # an exact min clock of 0 (regression: budget exhaustion was
        # mistaken for proved-false exhaustion).
        circuit = _compile("blackjack")
        full = analyze_timing(circuit, sat=False)
        assert full.min_clock_exact
        for sat in (False, True):
            tight = analyze_timing(circuit, sat=sat, max_pops=5)
            assert tight.min_clock_period is not None
            assert tight.min_clock_period >= full.min_clock_period
            assert not tight.min_clock_exact

    def test_fanout_model_orders_paths_consistently(self):
        circuit = _compile("adders")
        unit = analyze_timing(circuit, k=1, sat=False)
        fanout = analyze_timing(circuit, k=1, model="fanout", sat=False)
        # Per-opcode delays are >= 1 and wire load only adds, so the
        # fanout-model critical delay dominates the unit one.
        assert fanout.worst_arrival >= unit.worst_arrival
        assert fanout.model_name == "fanout"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            get_model("spice")

    def test_cyclic_design_reports_cycle(self):
        circuit = repro.compile_text("""
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
SIGNAL p, q: boolean;
BEGIN
    p := AND(a, q);
    q := NOT p;
    y := q
END;
SIGNAL u: t;
""", strict=False)
        report = analyze_timing(circuit)
        assert report.cycle
        assert not report.paths
        validate_timing_report(report.to_dict())


class TestFalsePathPruning:
    """The hand-built complementary-guard design (stdlib 'falsepath')."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_timing(_compile("falsepath"), k=4)

    def test_raw_critical_path_is_pruned(self, report):
        # Without pruning the critical path runs through the deep AND
        # chain (arrival 10); SAT proves s=1 AND s=0 unsatisfiable.
        assert report.worst_arrival == 10
        assert report.pruned
        assert max(p["delay"] for p in report.pruned) == 10
        for p in report.pruned:
            assert "UNSAT" in p["reason"]

    def test_pruning_changes_reported_critical_path(self, report):
        # The worst surviving path is strictly faster than the raw
        # worst arrival -- pruning changed the answer.
        worst_true = max(p["delay"] for p in report.paths)
        assert worst_true < report.worst_arrival

    def test_sensitizable_sibling_survives_with_replay(self, report):
        confirmed = [p for p in report.paths
                     if p["sensitization"] == "confirmed"]
        assert confirmed
        sib = confirmed[0]
        assert sib["startpoint"] == "fp.a"
        assert sib["replay"]["confirmed"] is True
        assert "flips" in sib["replay"]["detail"]
        # The witness drives the fast arm: s = 0 selects a into m1.
        assert sib["witness"]["fp.s"] == 0

    def test_every_confirmed_path_replays(self, report):
        for p in report.paths:
            if p["sensitization"] == "confirmed":
                assert p["replay"]["confirmed"] is True

    def test_no_sat_reports_raw_paths(self):
        report = analyze_timing(_compile("falsepath"), k=2, sat=False)
        assert not report.pruned
        assert max(p["delay"] for p in report.paths) == 10
        assert all(p["sensitization"] == "assumed"
                   for p in report.paths)

    def test_confirmed_witness_replays_by_hand(self, report):
        # Independently replay the confirmed witness: poke the frame,
        # flip the startpoint, watch the endpoint transition.
        circuit = _compile("falsepath")
        sib = next(p for p in report.paths
                   if p["sensitization"] == "confirmed")
        seen = set()
        for bit in (0, 1):
            sim = circuit.simulator(strict=False)
            for name in ("fp.a", "fp.b", "fp.c", "fp.d", "fp.s"):
                sim.poke(name, sib["witness"].get(name, 0))
            sim.poke(sib["startpoint"], bit)
            sim.step()
            seen.add(str(sim.peek_bit(sib["endpoint"])))
        assert seen == {"0", "1"}


class TestPathEnumeration:
    def test_worst_first_and_complete_on_small_design(self):
        circuit = repro.compile_text("""
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
BEGIN
    y := OR(AND(a, b), NOT a)
END;
SIGNAL u: t;
""")
        ctx = LintContext(circuit.design)
        graph = TimingGraph(ctx, UNIT)
        paths = list(enumerate_paths(graph))
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)
        # a reaches y twice (via AND and via NOT), b once via AND; all
        # gate->OR->drive chains are 3 arcs deep.
        starts = {(ctx.display[p.start], p.delay) for p in paths}
        assert starts == {("u.a", 3), ("u.b", 3)}
        a_paths = [p for p in paths if ctx.display[p.start] == "u.a"]
        assert len(a_paths) == 2

    def test_slack_zero_on_critical_path(self):
        circuit = _compile("adders")
        ctx = LintContext(circuit.design)
        graph = TimingGraph(ctx, UNIT)
        slack = graph.slack()
        crit = graph.critical_path()
        assert all(slack[ci] == 0 for ci in crit)
        assert all(s is None or s >= 0 for s in slack.values())


class TestTimingCLI:
    def test_clean_exit_zero(self, capsys):
        code, out, _ = run(["timing", "--builtin", "adders"], capsys)
        assert code == 0
        assert "worst arrival 28" in out
        assert "path #1" in out

    def test_clock_violation_exit_one(self, capsys):
        code, out, _ = run(
            ["timing", "--builtin", "adders", "--clock", "10"], capsys)
        assert code == 1
        assert "VIOLATED" in out

    def test_generous_clock_exit_zero(self, capsys):
        code, out, _ = run(
            ["timing", "--builtin", "adders", "--clock", "100"], capsys)
        assert code == 0

    def test_pruned_path_does_not_violate(self, capsys):
        # falsepath's raw worst path is 10 but it is proved false; a
        # clock of 7 admits every true path, so the exit is clean.
        code, out, _ = run(
            ["timing", "--builtin", "falsepath", "--clock", "7"], capsys)
        assert code == 0
        assert "pruned" in out

    def test_load_error_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.zeus"
        bad.write_text("TYPE t = COMPONENT (IN a: boolean\n")
        code, _, err = run(["timing", str(bad)], capsys)
        assert code == 2
        assert "error" in err

    def test_json_output_validates(self, tmp_path, capsys):
        out_file = tmp_path / "timing.json"
        code, _, _ = run(
            ["timing", "--builtin", "falsepath", "--format", "json",
             "-o", str(out_file)], capsys)
        assert code == 0
        report = json.loads(out_file.read_text())
        validate_timing_report(report)
        assert report["summary"]["paths_pruned"] > 0

    def test_sarif_output(self, capsys):
        code, out, _ = run(
            ["timing", "--builtin", "adders", "--clock", "5",
             "--format", "sarif"], capsys)
        assert code == 1
        sarif = json.loads(out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["results"]
        assert sarif["runs"][0]["results"][0]["ruleId"] == "ZT001"

    def test_metrics_has_timing_section(self, tmp_path, capsys):
        from repro.obs.export import validate_report

        metrics = tmp_path / "m.json"
        code, _, _ = run(
            ["timing", "--builtin", "falsepath",
             "--metrics", str(metrics)], capsys)
        assert code == 0
        report = json.loads(metrics.read_text())
        validate_report(report)
        assert report["timing"]["paths_pruned"] > 0
        assert report["timing"]["model"] == "unit"

    def test_fanout_model_flag(self, capsys):
        code, out, _ = run(
            ["timing", "--builtin", "adders", "--model", "fanout",
             "--paths", "1"], capsys)
        assert code == 0
        assert "model fanout" in out


class TestLintRebase:
    def test_depth_warning_cites_critical_path(self):
        from repro.lint import LintConfig, run_lint

        circuit = _compile("adders")
        config = LintConfig(max_depth=1, max_fanout=1)
        report = run_lint(circuit, config)
        depth = next(f for f in report.findings
                     if f.rule == "logic-depth-limit")
        assert "combinational depth is 28 unit delays" in depth.message
        assert "critical path:" in depth.message
        assert "->" in depth.message
        assert depth.data["depth"] == 28
