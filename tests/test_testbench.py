"""The Testbench driver utilities."""

import pytest

import repro
from repro.stdlib import programs
from repro.testbench import ExpectationError, Testbench

from zeus_test_utils import compile_ok


def adder_tb():
    return Testbench(compile_ok(programs.ripple_carry(4), top="adder"))


class TestDriveAndExpect:
    def test_simple_flow(self):
        tb = adder_tb()
        tb.drive(a=5, b=9, cin=0).clock().expect(s=14, cout=0)
        assert tb.checked == 2

    def test_expectation_failure_names_signal(self):
        tb = adder_tb()
        tb.drive(a=1, b=1, cin=0).clock()
        with pytest.raises(ExpectationError, match="s = 2"):
            tb.expect(s=3)

    def test_bit_expectations_accept_strings(self):
        tb = adder_tb()
        tb.drive(a=15, b=1, cin=0).clock().expect(cout=1)
        tb.release("a")
        tb.clock()
        tb.expect(cout="UNDEF")

    def test_dotted_paths_via_dunder(self):
        tb = Testbench(compile_ok(programs.SECTION8))
        tb.drive(a=1, b=1, c=0, x=1, y=0, rin=1).clock()
        tb.expect(fig__rout="UNDEF")  # register not yet latched visibly
        tb.clock()
        tb.expect(fig__rout=1)


class TestReset:
    def test_reset_drives_inputs_low(self):
        tb = Testbench(compile_ok(programs.BLACKJACK))
        tb.reset(cycles=1)
        tb.clock()
        assert tb.peek_int("bj.state.out") is not None

    def test_reset_with_explicit_holds(self):
        tb = Testbench(compile_ok(programs.patternmatch(3)))
        tb.reset(cycles=5, pattern=0, string=0, endofpattern=0,
                 wild=0, resultin=0)
        tb.clock()
        # Pipelines are flushed: internal markers are defined.
        assert tb.preview is not None


class TestPreview:
    def test_handshake_with_preview(self):
        tb = Testbench(compile_ok(programs.BLACKJACK))
        tb.reset(cycles=1)
        tb.clock()  # start -> read
        dealt = False
        for _ in range(5):
            tb.drive(ycard=0)
            with tb.preview() as now:
                if now.bit("hit") == "1":
                    tb.drive(ycard=1, value=10)
                    dealt = True
            tb.clock()
            if dealt:
                break
        assert dealt

    def test_preview_does_not_advance_clock(self):
        tb = adder_tb()
        tb.drive(a=1, b=2, cin=0)
        before = tb.sim.cycle
        with tb.preview() as now:
            assert now.int("s") == 3
        assert tb.sim.cycle == before


class TestRunTable:
    def test_stimulus_table(self):
        tb = adder_tb()
        tb.run_table([
            {"a": 1, "b": 2, "cin": 0, "expect_s": 3, "expect_cout": 0},
            {"a": 15, "b": 15, "cin": 1, "expect_s": 15, "expect_cout": 1},
            {"a": 0, "b": 0, "cin": 0, "expect_s": 0},
        ])
        assert tb.checked == 5

    def test_counter_table(self):
        from repro.stdlib import library

        tb = Testbench(compile_ok(library.counter(3)))
        tb.reset(cycles=1, en=0)
        tb.run_table([
            {"en": 1, "expect_count": 0},
            {"en": 1, "expect_count": 1},
            {"en": 0, "expect_count": 2},
            {"en": 0, "expect_count": 2},
            {"en": 1, "expect_count": 2},
            {"en": 1, "expect_count": 3},
        ])
