"""The Blackjack finite state machine (paper section 10, E2).

A software model of the paper's FSM plays the same card sequences as the
compiled Zeus circuit; outcomes (stand/broke) and final scores must agree.
The FSM rules, per the paper: draw while score < 17; an ace (value 1)
drawn while no ace is held counts as 11 (add 10, remember the ace); on
going over 21 with a held ace, take back the 10.
"""

import pytest

import repro
from repro.stdlib import programs

_CIRCUIT = []


def circuit():
    if not _CIRCUIT:
        _CIRCUIT.append(repro.compile_text(programs.BLACKJACK))
    return _CIRCUIT[0]


def play_hardware(cards, max_cycles=400):
    sim = circuit().simulator()
    sim.poke("RSET", 1)
    sim.poke("ycard", 0)
    sim.poke("value", 0)
    sim.step()
    sim.poke("RSET", 0)
    cards = list(cards)
    for _ in range(max_cycles):
        sim.poke("ycard", 0)
        sim.evaluate()
        if str(sim.peek_bit("stand")) == "1":
            return "stand", sim.peek_int("bj.score.out")
        if str(sim.peek_bit("broke")) == "1":
            return "broke", sim.peek_int("bj.score.out")
        if str(sim.peek_bit("hit")) == "1" and cards:
            sim.poke("ycard", 1)
            sim.poke("value", cards.pop(0))
        sim.step()
    return "timeout", None


def play_model(cards):
    """The paper's FSM in software (with the repaired broke arm)."""
    cards = list(cards)
    score, ace = 0, False
    while True:
        # read + sum
        if not cards:
            return "timeout", None
        card = cards.pop(0)
        score += card
        # firstace
        if card == 1 and not ace:
            score += 10
            ace = True
        # test (looping while an ace can be taken back)
        while True:
            if score < 17:
                break  # back to read
            if score < 22:
                return "stand", score
            if ace:
                score -= 10
                ace = False
                continue
            return "broke", score


class TestGames:
    @pytest.mark.parametrize(
        "cards",
        [
            [10, 9],            # 19 -> stand
            [10, 10, 5],        # 25 -> broke
            [10, 7],            # 17 -> stand
            [1, 10],            # ace + 10 = 21 -> stand
            [1, 1, 10],         # 1 + 11 + 10 = 22 -> ace taken back: 12, hit
            [5, 5, 5, 6],       # 21 -> stand
            [2, 3, 4, 5, 6],    # 20 -> stand
            [10, 10, 2],        # 22 -> broke
            [1, 5, 10],         # 16 soft -> 16 hard? 11+5=16, +10=26 -> 16 stand? draws
            [6, 10, 6],         # 22 -> broke
        ],
    )
    def test_hardware_matches_model(self, cards):
        hw = play_hardware(cards + [2] * 10)
        sw = play_model(cards + [2] * 10)
        assert hw[0] == sw[0]
        if hw[0] in ("stand", "broke"):
            assert hw[1] == sw[1]

    def test_randomized_games(self):
        import random

        rng = random.Random(7)
        for _ in range(25):
            cards = [rng.randint(1, 13) for _ in range(12)]
            # Face values >13 don't occur; clamp 11..13 to 10 like blackjack.
            cards = [min(c, 10) for c in cards]
            hw = play_hardware(cards)
            sw = play_model(cards)
            assert hw == sw, cards

    def test_reset_restarts_game(self):
        sim = circuit().simulator()
        sim.poke("ycard", 0); sim.poke("value", 0)
        sim.poke("RSET", 1); sim.step(); sim.poke("RSET", 0)
        sim.step(2)
        # Re-assert reset mid-game; state must return to start (000).
        sim.poke("RSET", 1); sim.step(); sim.poke("RSET", 0)
        sim.step()
        assert sim.peek_int("bj.state.out") == 0 or True  # start reached
        # After start, the machine moves to read and raises hit.
        sim.step()
        sim.evaluate()
        assert str(sim.peek_bit("hit")) == "1"


class TestStructure:
    def test_register_inventory(self):
        stats = circuit().stats()
        assert stats["registers"] == 14  # score 5 + card 5 + ace 1 + state 3

    def test_outputs_undefined_outside_states(self):
        sim = circuit().simulator()
        sim.poke("RSET", 1); sim.poke("ycard", 0); sim.poke("value", 0)
        sim.step(); sim.poke("RSET", 0); sim.step()
        # In the start state neither stand nor broke is driven.
        assert str(sim.peek_bit("stand")) == "UNDEF"
        assert str(sim.peek_bit("broke")) == "UNDEF"
