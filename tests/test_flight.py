"""Flight recorder, causal explainer, zeus.trace/1 and Chrome trace
tests (the PR-6 observability subsystem)."""

import json

import pytest

import repro
from repro.analysis.fuzzgen import generate_program
from repro.cli import main
from repro.core.trace import Trace
from repro.core.values import Logic
from repro.obs import (
    FlightRecorder,
    chrome_trace,
    explain,
    trace_report,
    use_registry,
    validate_chrome_trace,
    validate_trace_report,
)
from repro.obs import spans as obs_spans
from repro.stdlib import programs

from zeus_test_utils import compile_ok

COUNTER = """
TYPE t = COMPONENT (IN en: boolean; OUT q0: boolean) IS
SIGNAL r0: REG;
BEGIN
    IF RSET THEN r0.in := 0
    ELSE IF en THEN r0.in := NOT r0.out END;
    END;
    q0 := r0.out
END;
SIGNAL c: t;
"""

ALL_ENGINES = ["levelized", "dataflow", "batched"]


def run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


def _sim_kwargs(engine):
    return {"engine": engine, "lanes": 4} if engine == "batched" else {
        "engine": engine
    }


class TestRecorder:
    def test_disabled_by_default(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator()
        sim.step(3)
        assert sim.flight is None

    def test_int_shorthand_and_binding(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=5)
        assert isinstance(sim.flight, FlightRecorder)
        assert sim.flight.capacity == 5
        assert sim.flight.sim is sim

    def test_ring_bounds_memory_and_counts_drops(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=4)
        sim.poke("RSET", 1); sim.poke("en", 0)
        sim.step(10)
        fl = sim.flight
        assert len(fl) == 4
        assert fl.dropped == 6
        assert fl.first_cycle == 6 and fl.last_cycle == 9
        assert list(fl.cycles()) == [6, 7, 8, 9]

    def test_snapshot_outside_window_raises_keyerror(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=2)
        sim.step(5)
        fl = sim.flight
        with pytest.raises(KeyError):
            fl.snapshot(0)  # evicted
        with pytest.raises(KeyError):
            fl.snapshot(99)  # never simulated
        empty = circuit.simulator(flight=2).flight
        with pytest.raises(KeyError):
            empty.snapshot(0)

    def test_reset_state_clears_records(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=8)
        sim.step(3)
        assert len(sim.flight) == 3
        sim.reset_state()
        assert len(sim.flight) == 0 and sim.flight.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_testbench_threads_flight(self):
        tb = repro.make_testbench(compile_ok(COUNTER), flight=6)
        tb.reset(cycles=1)
        tb.drive(en=1).clock()
        assert isinstance(tb.sim.flight, FlightRecorder)
        assert len(tb.sim.flight) == 2

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_latch_events_follow_reg_writes(self, engine):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=8, **_sim_kwargs(engine))
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1); sim.step(3)
        latches = [
            e for e in sim.flight.events() if e.kind == "latch"
        ]
        assert latches, "enabled counter must latch every cycle"
        assert all(e.net == "c.r0" for e in latches)
        # the toggling counter alternates the latched d-value
        assert {e.value for e in latches[1:]} <= {"0", "1"}


class TestTraceAgreement:
    """Flight records must agree with Trace/VCD samples cycle-by-cycle:
    both observe post-evaluate values (lane 0 on the batched engine)."""

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    @pytest.mark.parametrize(
        "builtin,watch,pokes",
        [
            ("blackjack", ["hit", "stand", "broke"],
             {"RSET": 1, "ycard": 0, "value": 0}),
            ("adders", ["s", "cout"], {"a": 13, "b": 9, "cin": 1}),
        ],
    )
    def test_flight_matches_trace_history(
        self, engine, builtin, watch, pokes
    ):
        circuit = repro.compile_text(
            programs.ALL_PROGRAMS[builtin],
            top="adder" if builtin == "adders" else None,
        )
        cycles = 6
        sim = circuit.simulator(
            strict=False, flight=cycles, **_sim_kwargs(engine)
        )
        trace = Trace(list(watch))
        sim.attach_trace(trace)
        for sig, val in pokes.items():
            sim.poke(sig, val)
        sim.step(cycles)
        fl = sim.flight
        for path in watch:
            history = trace.values(path)
            for cycle in range(cycles):
                assert fl.peek(path, cycle) == history[cycle], (
                    f"{engine}/{builtin}: {path} diverges at {cycle}"
                )

    def test_vcd_and_trace_report_from_same_run(self, tmp_path):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=8)
        trace = Trace(["q0"])
        sim.attach_trace(trace)
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 1); sim.step(5)
        vcd = trace.to_vcd(circuit.name)
        assert "$var wire 1" in vcd
        report = trace_report(circuit, sim)
        validate_trace_report(report)
        fires = [
            e for e in report["events"]
            if e["kind"] == "fire" and e["net"] == "c.q0"
        ]
        assert [e["value"] for e in fires] == [
            str(b) for b in trace.bits("q0")
        ]


class TestExplain:
    def test_needs_flight_recorder(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator()
        sim.step(2)
        with pytest.raises(repro.SimulationError):
            explain(sim, "q0", 1)

    def test_undef_traced_to_unpoked_input(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
            BEGIN y := AND(a, b) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(flight=4)
        sim.poke("a", 1)
        sim.step(2)
        ex = explain(sim, "y", 1)
        text = ex.render_text()
        assert "u.y @ 1 = UNDEF" in text
        assert "not poked" in text and "u.b" in text
        # the minimal cone: the poked-1 input is NOT blamed
        assert text.count("u.a") == 0

    def test_conflict_names_both_drivers(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN a, b, s: boolean; OUT z: boolean) IS
            BEGIN
                IF s THEN z := a END;
                IF a THEN z := b END
            END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        sim = circuit.simulator(strict=False, flight=4)
        sim.poke("a", 1); sim.poke("b", 0); sim.poke("s", 1)
        sim.step(2)
        assert sim.violations
        text = explain(sim, "z", 1).render_text()
        assert "MULTIPLEX CONFLICT" in text
        assert "guard u.s" in text and "guard u.a" in text

    def test_register_backwalk_finds_latch_cycle(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=16)
        sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
        sim.poke("RSET", 0); sim.poke("en", 0); sim.step(4)
        # en held 0: q0 keeps the 0 latched during reset at cycle 0
        ex = explain(sim, "q0", 4)
        assert "latched at cycle 0" in ex.render_text()

    def test_off_guards_explain_noinfl(self):
        circuit = repro.compile_text(
            """
            TYPE t = COMPONENT (IN s, a: boolean; OUT z: boolean) IS
            BEGIN IF s THEN z := a END END;
            SIGNAL u: t;
            """,
            strict=False,
        )
        sim = circuit.simulator(strict=False, flight=4)
        sim.poke("s", 0); sim.poke("a", 1)
        sim.step()
        text = explain(sim, "z", 0).render_text()
        assert "off (guards 0)" in text

    def test_max_nodes_budget_truncates(self):
        circuit = repro.compile_text(programs.BLACKJACK, strict=True)
        sim = circuit.simulator(strict=False, flight=8)
        sim.step(6)
        full = explain(sim, "hit", 5, max_nodes=50_000)
        assert not full.truncated
        ex = explain(sim, "hit", 5, max_nodes=10)
        assert ex.truncated
        # the budget bounds the walk: every node past the limit is an
        # unexpanded stub, so the tree stays far below the full cone
        assert ex.node_count < full.node_count
        assert "walk budget exhausted" in ex.render_text()

    def test_explain_agrees_across_engines(self):
        circuit = compile_ok(COUNTER)
        texts = []
        for engine in ALL_ENGINES:
            sim = circuit.simulator(flight=8, **_sim_kwargs(engine))
            sim.poke("RSET", 1); sim.poke("en", 0); sim.step()
            sim.poke("RSET", 0); sim.poke("en", 1); sim.step(3)
            ex = explain(sim, "q0", 3)
            texts.append(
                ex.render_text().splitlines()[1:]  # drop the engine line
            )
        assert texts[0] == texts[1] == texts[2]

    def test_dot_output_merges_reconvergence(self):
        circuit = compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := AND(a, NOT a) END;
            SIGNAL u: t;
            """
        )
        sim = circuit.simulator(flight=2)
        sim.poke("a", 1)
        sim.step()
        dot = explain(sim, "y", 0).render_dot()
        assert dot.startswith("digraph")
        # the input is one node even though two paths reach it
        assert dot.count('u.a @ 0') == 1


class TestFuzzedConflict:
    """The acceptance scenario: a fuzzgen-injected multiplex conflict
    is diagnosed end to end, naming the conflicting drivers."""

    SEED = 0
    VECTOR = {"i0": 1, "i1": 1, "i2": 0, "i3": 0, "i4": 1}

    def _conflicted_sim(self):
        prog = generate_program(self.SEED)
        circuit = repro.compile_text(prog.text, strict=False)
        sim = circuit.simulator(strict=False, flight=8)
        for sig, val in self.VECTOR.items():
            sim.poke(sig, val)
        sim.step(3)
        return circuit, sim

    def test_seed_still_produces_the_conflict(self):
        _, sim = self._conflicted_sim()
        assert any(v.net == "u.z1" for v in sim.violations)

    def test_explain_names_the_conflicting_drivers(self):
        _, sim = self._conflicted_sim()
        text = explain(sim, "z1", 2).render_text()
        assert "MULTIPLEX CONFLICT: 2 drivers" in text
        # seed 0 wires `IF ch.y THEN z1 := 1` and `IF i0 THEN z1 := 1`;
        # both guards were 1 under VECTOR, so both must be named.
        assert "guard u.ch.y" in text
        assert "guard u.i0" in text
        # the off driver (r0.out held 0) must NOT be blamed
        assert "guard u.r0.out" not in text

    def test_cli_explain_on_fuzz_file(self, tmp_path, capsys):
        prog = generate_program(self.SEED)
        src = tmp_path / "fuzz0.zeus"
        src.write_text(prog.text)
        argv = ["explain", str(src), "--lenient", "--net", "z1",
                "--cycle", "2"]
        for sig, val in self.VECTOR.items():
            argv += ["--poke", f"{sig}={val}"]
        code, out, _ = run(argv, capsys)
        assert code == 0
        assert "MULTIPLEX CONFLICT" in out
        assert "guard u.ch.y" in out and "guard u.i0" in out


class TestTraceSchema:
    def test_roundtrip_via_cli(self, tmp_path, capsys):
        out = tmp_path / "window.json"
        code, _, _ = run(
            ["sim", "--builtin", "blackjack", "--cycles", "6",
             "--poke", "RSET=1", "--poke", "RSET=0@2",
             "--flight", "4", "--trace-out", str(out)],
            capsys,
        )
        assert code == 0
        report = json.loads(out.read_text())
        validate_trace_report(report)
        assert report["schema"] == "zeus.trace/1"
        assert report["window"] == {
            "first": 2, "last": 5, "capacity": 4,
            "recorded": 4, "dropped": 2,
        }
        kinds = {e["kind"] for e in report["events"]}
        assert {"fire", "poke", "latch"} <= kinds

    def test_explain_json_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "why.json"
        code, _, _ = run(
            ["explain", "--builtin", "blackjack", "--net", "hit",
             "--cycle", "2", "--format", "json", "-o", str(out)],
            capsys,
        )
        assert code == 0
        report = json.loads(out.read_text())
        validate_trace_report(report)
        expl = report["explanation"]
        assert expl["target"] == {
            "path": "hit", "cycle": 2, "value": "UNDEF",
        }
        assert expl["tree"] and expl["node_count"] > 0

    def test_validator_rejects_malformed(self):
        good = {
            "schema": "zeus.trace/1",
            "design": {"name": "t", "nets": 1, "gates": 0,
                       "connections": 0, "registers": 0},
            "engine": "levelized", "lanes": None,
            "window": {"first": 0, "last": 0, "capacity": 1,
                       "recorded": 1, "dropped": 0},
            "events": [{"cycle": 0, "kind": "fire", "net": "a",
                        "value": "1"}],
        }
        validate_trace_report(good)
        for mutate in (
            lambda r: r.update(schema="zeus.trace/2"),
            lambda r: r["events"].append(
                {"cycle": 0, "kind": "bad", "net": "a", "value": "1"}),
            lambda r: r["events"].append(
                {"cycle": 0, "kind": "fire", "net": "a", "value": "2"}),
            lambda r: r["window"].update(first=None),
            lambda r: r.pop("engine"),
        ):
            bad = json.loads(json.dumps(good))
            mutate(bad)
            with pytest.raises(ValueError):
                validate_trace_report(bad)

    def test_events_time_ordering_enforced(self):
        circuit = compile_ok(COUNTER)
        sim = circuit.simulator(flight=4)
        sim.step(3)
        report = trace_report(circuit, sim)
        validate_trace_report(report)
        shuffled = json.loads(json.dumps(report))
        shuffled["events"] = list(reversed(shuffled["events"]))
        if len({e["cycle"] for e in shuffled["events"]}) > 1:
            with pytest.raises(ValueError):
                validate_trace_report(shuffled)


class TestChromeTrace:
    def test_cli_profile_chrome_validates(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code, stdout, _ = run(
            ["profile", "--builtin", "blackjack", "--cycles", "16",
             "--poke", "RSET=1", "--poke", "RSET=0@2",
             "--chrome", str(out)],
            capsys,
        )
        assert code == 0 and f"wrote {out}" in stdout
        trace = json.loads(out.read_text())
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        # required fields on every event
        assert all(
            "ph" in e and "ts" in e and "name" in e for e in events
        )
        slices = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "compile" for e in slices)
        assert sum(e["name"].startswith("cycle") for e in slices) == 16
        names = {e["name"] for e in counters}
        assert {"firings", "gate_evals", "violations"} <= names
        assert all(
            isinstance(v, (int, float))
            for e in counters for v in e["args"].values()
        )

    def test_compile_spans_nest_inside_compile(self):
        reg = obs_spans.SpanRegistry()
        circuit = repro.compile_text(COUNTER, registry=reg)
        sim = circuit.simulator(metrics=True)
        sim.step(4)
        trace = chrome_trace(reg, sim, elapsed=0.004)
        validate_chrome_trace(trace)
        spans = {
            e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"
        }
        comp, lex = spans["compile"], spans["lex"]
        assert comp["ts"] <= lex["ts"]
        assert lex["ts"] + lex["dur"] <= comp["ts"] + comp["dur"] + 1e-6

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "name": "a", "ts": 0}]})  # no dur
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "C", "name": "a", "ts": 0,
                     "args": {"v": "high"}}]})  # non-numeric counter


class TestRegistryThreading:
    def test_compile_text_private_registry(self):
        obs_spans.REGISTRY.reset()
        mine = obs_spans.SpanRegistry()
        repro.compile_text(COUNTER, registry=mine)
        names = {s.name for s in mine.spans}
        assert {"compile", "lex", "parse", "elaborate", "check"} <= names
        # the process-wide registry saw nothing
        assert len(obs_spans.REGISTRY.spans) == 0

    def test_use_registry_scopes_contextually(self):
        obs_spans.REGISTRY.reset()
        mine = obs_spans.SpanRegistry()
        with use_registry(mine):
            repro.compile_text(COUNTER)
        assert mine.phase_totals()["compile"] > 0
        assert len(obs_spans.REGISTRY.spans) == 0
        # outside the block the default is back
        repro.compile_text(COUNTER)
        assert len(obs_spans.REGISTRY.spans) > 0
        obs_spans.REGISTRY.reset()

    def test_cli_leaves_global_registry_untouched(self, capsys):
        obs_spans.REGISTRY.reset()
        code, _, _ = run(
            ["sim", "--builtin", "adders", "--top", "adder",
             "--cycles", "2"],
            capsys,
        )
        assert code == 0
        assert len(obs_spans.REGISTRY.spans) == 0


class TestExitCodes:
    def test_explain_unknown_net_exits_2(self, capsys):
        code, _, err = run(
            ["explain", "--builtin", "blackjack", "--net", "nosuch",
             "--cycle", "1"],
            capsys,
        )
        assert code == 2 and "error:" in err

    def test_explain_out_of_range_cycle_exits_2(self, capsys):
        code, _, err = run(
            ["explain", "--builtin", "blackjack", "--net", "hit",
             "--cycle", "50", "--cycles", "4"],
            capsys,
        )
        assert code == 2
        assert "outside the recorded window" in err

    def test_explain_negative_cycle_exits_2(self, capsys):
        code, _, err = run(
            ["explain", "--builtin", "blackjack", "--net", "hit",
             "--cycle", "-3"],
            capsys,
        )
        assert code == 2 and "error:" in err

    def test_sim_unknown_watch_still_exits_2(self, capsys):
        code, _, err = run(
            ["sim", "--builtin", "blackjack", "--cycles", "2",
             "--watch", "nosuch", "--flight", "2"],
            capsys,
        )
        assert code == 2 and "error:" in err
