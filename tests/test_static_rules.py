"""The static type rules of section 4.7, rule by rule.

Each test exercises one row of the paper's type-rule tables (1)-(3) or
one of the scattered textual rules, in both the accepting and the
rejecting direction.
"""

import pytest

import repro
from repro.lang import CheckError, TypeError_

from zeus_test_utils import compile_ok


def rejects(text, match, top=None):
    with pytest.raises((CheckError, TypeError_), match=match):
        repro.compile_text(text, top=top)


WRAP = """
TYPE inner = COMPONENT (IN a: boolean; OUT y: boolean; z: multiplex) IS
BEGIN y := a END;
t = COMPONENT (IN a, b: boolean; OUT y: boolean; zz: multiplex) IS
SIGNAL sub: inner;
       loc: boolean;
       m: multiplex;
BEGIN
    {body}
END;
SIGNAL u: t;
"""


def wrap(body):
    return WRAP.replace("{body}", body)


class TestUnconditionalAssignment:
    """Table (1), unconditional row: all four kind combinations legal,
    but exactly one assignment in total."""

    def test_boolean_from_boolean(self):
        compile_ok(wrap("y := a; sub(a, *, *); zz == *; loc := b; * := loc"))

    def test_multiplex_from_boolean(self):
        compile_ok(wrap("m := a; * := m; y := a; sub(a, *, *); zz == *"))

    def test_boolean_from_multiplex(self):
        compile_ok(wrap("y := sub.z; sub(a, *, *); zz == *"))

    def test_double_unconditional_rejected(self):
        rejects(wrap("y := a; y := b; sub(a,*,*); zz == *"),
                "unconditional assignments")

    def test_power_ground_short_rejected(self):
        # The paper's canonical example: x := 1; x := 0.
        rejects(wrap("loc := 1; loc := 0; y := a; sub(a,*,*); zz == *"),
                "unconditional")

    def test_locked_multiplex_rejected(self):
        # mux := unconditional locks the signal against further drives.
        rejects(wrap("m := a; IF b THEN m := a END; y := a; sub(a,*,*); zz == *"),
                "conditionally and unconditionally")


class TestConditionalAssignment:
    """Table (1), conditional row: target must be multiplex, except the
    exception-1 signals."""

    def test_conditional_multiplex_ok(self):
        compile_ok(wrap(
            "IF a THEN m := b END; IF NOT a THEN m := 0 END; * := m; "
            "y := a; sub(a,*,*); zz == *"
        ))

    def test_conditional_local_boolean_rejected(self):
        rejects(wrap("IF a THEN loc := b END; * := loc; y := a; sub(a,*,*); zz == *"),
                "conditional assignment to boolean")

    def test_exception1_formal_out_ok(self):
        # A formal OUT parameter may be assigned conditionally.
        compile_ok(wrap("IF a THEN y := b END; sub(a,*,*); zz == *"))

    def test_exception1_instance_in_pin_ok(self):
        # An IN parameter of an instantiated component likewise.
        compile_ok(wrap(
            "IF a THEN sub.a := b END; * := sub.y; sub.z == *; y := a; zz == *"
        ))

    def test_conditional_and_unconditional_mixed_rejected(self):
        rejects(wrap("y := a; IF b THEN y := 0 END; sub(a,*,*); zz == *"),
                "conditionally and unconditionally")


class TestAliasing:
    """Table (2): == needs multiplex on both sides, except exception 1."""

    def test_mux_mux_ok(self):
        compile_ok(wrap("m == zz; * := m; y := a; sub(a,*,*)"))

    def test_boolean_boolean_rejected(self):
        rejects(wrap("loc == b; y := a; sub(a,*,*); zz == *"),
                "alias boolean")

    def test_local_boolean_mux_rejected(self):
        rejects(wrap("loc == m; y := a; sub(a,*,*); zz == *"),
                "alias boolean")

    def test_exception1_in_pin_with_mux_ok(self):
        compile_ok(wrap("sub.a == m; * := sub.y; sub.z == *; y := a; zz == *"))

    def test_exception1_formal_out_with_mux_ok(self):
        compile_ok(wrap("y == m; IF a THEN m := b END; sub(a,*,*); zz == *"))

    def test_alias_in_conditional_rejected(self):
        rejects(wrap("IF a THEN zz == m END; y := a; sub(a,*,*)"),
                "conditional")

    def test_aliased_boolean_not_also_assigned(self):
        # "If a signal of type boolean is assigned with == then it may not
        # unconditionally be assigned with :=".
        rejects(wrap("sub.a == m; sub.a := b; * := sub.y; sub.z == *; y := a; zz == *"),
                "aliased with == and also")

    def test_width_mismatch_rejected(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean;
                                p: ARRAY [1..2] OF multiplex;
                                q: ARRAY [1..3] OF multiplex) IS
            BEGIN p == q; y := a END;
            SIGNAL u: t;
            """,
            "different widths",
        )


class TestParameterDirections:
    def test_assign_to_formal_in_rejected(self):
        rejects(wrap("a := b; y := a; sub(a,*,*); zz == *"),
                "formal IN parameter")

    def test_assign_to_instance_out_rejected(self):
        rejects(wrap("sub.y := b; y := a; sub(a,*,*); zz == *"),
                "OUT parameter .* instantiated")

    def test_unstructured_in_must_be_boolean(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: multiplex; OUT y: boolean) IS
            BEGIN y := a END;
            SIGNAL u: t;
            """,
            "must be boolean",
        )

    def test_unstructured_inout_must_be_multiplex(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean; z: boolean) IS
            BEGIN y := a; z == * END;
            SIGNAL u: t;
            """,
            "must be multiplex",
        )

    def test_record_types_exempt_from_mode_kinds(self):
        # The paper's own bus record has an INOUT boolean field.
        compile_ok(
            """
            TYPE bo3 = ARRAY [1..3] OF boolean;
            bus = COMPONENT (r, s, t: bo3; u: boolean);
            w = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL b: bus;
            BEGIN b.u := a; y := b.u END;
            SIGNAL top: w;
            """
        )


class TestFeedbackLoops:
    def test_combinational_loop_rejected(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s1, s2: boolean;
            BEGIN
                s1 := NOT s2;
                s2 := NOT s1;
                y := AND(a, s1)
            END;
            SIGNAL u: t;
            """,
            "feedback loop",
        )

    def test_loop_through_register_ok(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL r: REG;
            BEGIN
                r.in := XOR(a, r.out);
                y := r.out
            END;
            SIGNAL u: t;
            """
        )

    def test_self_loop_rejected(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s: ARRAY [1..2] OF multiplex;
            BEGIN
                IF a THEN s[1] := s[1] END;
                y := a; * := s
            END;
            SIGNAL u: t;
            """,
            "feedback loop",
        )


class TestUnusedPorts:
    def test_unused_port_rejected(self):
        rejects(wrap("* := sub.y; y := a; zz == *"), "neither used nor assigned")

    def test_star_closes_port(self):
        compile_ok(wrap("sub(*, *, *); y := a; zz == *"))

    def test_completely_disconnected_is_legal(self):
        # "it is legal to have completely disconnected components".
        compile_ok(
            """
            TYPE inner = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := a END;
            t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL ghost: inner;
            BEGIN y := a END;
            SIGNAL u: t;
            """
        )


class TestSequentialConsistency:
    def test_consistent_order_ok(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s: boolean;
            BEGIN
                SEQUENTIAL
                    s := NOT a;
                    y := NOT s;
                END
            END;
            SIGNAL u: t;
            """
        )

    def test_inconsistent_order_rejected(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
            SIGNAL s: boolean;
            BEGIN
                SEQUENTIAL
                    y := NOT s;
                    s := NOT a;
                END
            END;
            SIGNAL u: t;
            """,
            "SEQUENTIAL order incompatible",
        )

    def test_parallel_inside_sequential(self):
        compile_ok(
            """
            TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
            SIGNAL s1, s2: boolean;
            BEGIN
                SEQUENTIAL
                    PARALLEL s1 := NOT a; s2 := NOT b END;
                    y := AND(s1, s2);
                END
            END;
            SIGNAL u: t;
            """
        )


class TestIfRestrictions:
    def test_condition_must_be_single_bit(self):
        rejects(
            """
            TYPE t = COMPONENT (IN a: ARRAY [1..2] OF boolean;
                                OUT y: boolean) IS
            BEGIN
                IF a THEN y := 1 END
            END;
            SIGNAL u: t;
            """,
            "single basic signal",
        )

    def test_connection_inside_if_becomes_guarded(self):
        compile_ok(
            """
            TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS
            BEGIN y := NOT a END;
            t = COMPONENT (IN a, en: boolean; OUT y: boolean; z: multiplex) IS
            SIGNAL g: inv;
            BEGIN
                IF en THEN g(a, z) END;
                * := g.y;
                y := a
            END;
            SIGNAL u: t;
            """
        )
