"""E11 -- the abstract's other language test cases: AM2901, dictionary
machine, systolic stack.

Reproduces: functional behaviour of each circuit and cycle-throughput
measurements (these are the 'variety of examples' the language was
"tested on").
"""

import random

import pytest

from repro.stdlib import extras

from zeus_bench_utils import compile_cached


def stack_workout(circuit, ops, seed=0):
    sim = circuit.simulator()
    sim.poke("RSET", 1)
    for k in ("push", "pop", "din"):
        sim.poke(k, 0)
    sim.step()
    sim.poke("RSET", 0)
    rng = random.Random(seed)
    model = []
    for _ in range(ops):
        if model and rng.random() < 0.45:
            sim.poke("push", 0); sim.poke("pop", 0)
            sim.evaluate()
            assert sim.peek_int("top") == model[-1]
            sim.poke("pop", 1); sim.step(); sim.poke("pop", 0)
            model.pop()
        elif len(model) < 8:
            v = rng.randrange(16)
            sim.poke("pop", 0); sim.poke("push", 1); sim.poke("din", v)
            sim.step(); sim.poke("push", 0)
            model.append(v)
    return len(model)


def test_stack_against_model():
    circuit = compile_cached(extras.SYSTOLIC_STACK)
    stack_workout(circuit, 60)


def test_bench_stack(benchmark):
    circuit = compile_cached(extras.SYSTOLIC_STACK)
    benchmark(stack_workout, circuit, 25)
    benchmark.extra_info["netlist"] = circuit.stats()


def alu_program(circuit, steps, seed=0):
    """A register-file workout: load, arithmetic, accumulate via Q."""
    sim = circuit.simulator()
    rng = random.Random(seed)
    regs = [0] * 16

    def op(src, func, dest, d=0, a=0, b=0):
        sim.poke("d", d); sim.poke("aaddr", a); sim.poke("baddr", b)
        sim.poke("src", src); sim.poke("func", func); sim.poke("dest", dest)
        sim.step()
        return sim.peek_int("y")

    for r in range(8):
        value = rng.randrange(16)
        op(7, 0, 2, d=value, b=r)  # DZ / ADD / RAM[B] := D
        regs[r] = value
    checked = 0
    for _ in range(steps):
        a, b = rng.randrange(8), rng.randrange(8)
        y = op(1, 0, 0, a=a, b=b)  # AB / ADD / none
        assert y == (regs[a] + regs[b]) & 15
        checked += 1
    return checked


def test_alu_register_file_program():
    circuit = compile_cached(extras.AM2901)
    assert alu_program(circuit, 20) == 20


def test_bench_am2901(benchmark):
    circuit = compile_cached(extras.AM2901)
    checked = benchmark(alu_program, circuit, 10)
    benchmark.extra_info["netlist"] = circuit.stats()
    assert checked == 10


def dictionary_workout(circuit, queries, seed=0):
    sim = circuit.simulator()
    sim.poke("RSET", 1)
    for k in ("load", "del", "slot", "key", "query"):
        sim.poke(k, 0)
    sim.step()
    sim.poke("RSET", 0)
    rng = random.Random(seed)
    stored = {}
    for slot in range(8):
        key = rng.randrange(64)
        sim.poke("load", 1); sim.poke("slot", slot); sim.poke("key", key)
        sim.step()
        stored[slot] = key
    sim.poke("load", 0)
    hits = 0
    for _ in range(queries):
        key = rng.randrange(64)
        sim.poke("query", key)
        sim.step(5)
        got = str(sim.peek_bit("member")) == "1"
        assert got == (key in stored.values())
        hits += got
    return hits


def test_dictionary_against_model():
    circuit = compile_cached(extras.DICTIONARY)
    dictionary_workout(circuit, 30)


def test_bench_dictionary(benchmark):
    circuit = compile_cached(extras.DICTIONARY)
    benchmark(dictionary_workout, circuit, 10)
    benchmark.extra_info["netlist"] = circuit.stats()


def sort_batch(circuit, batches, seed=0):
    rng = random.Random(seed)
    sim = circuit.simulator()
    for _ in range(batches):
        values = [rng.randrange(16) for _ in range(4)]
        for i, v in enumerate(values):
            sim.poke(f"din[{i + 1}]", v)
        sim.step()
        got = [sim.peek_int(f"dout[{i + 1}]") for i in range(4)]
        assert got == sorted(values)
    return batches


def test_bench_sorter(benchmark):
    circuit = compile_cached(extras.SORTER)
    benchmark(sort_batch, circuit, 10)
    benchmark.extra_info["netlist"] = circuit.stats()


def fir_stream(circuit, samples, seed=0):
    rng = random.Random(seed)
    sim = circuit.simulator()
    coef = [1, 0, 1, 1]
    sim.poke("RSET", 1); sim.poke("x", 0); sim.poke("coef", coef)
    sim.step()
    sim.poke("RSET", 0)
    xs = [rng.randrange(10) for _ in range(samples)]
    outs = []
    for x in xs:
        sim.poke("x", x)
        sim.step()
        outs.append(sim.peek_int("y"))
    golden = []
    for t in range(len(xs)):
        total = sum(coef[j - 1] * xs[t - j] for j in range(1, 5) if t - j >= 0)
        golden.append(total % 256)
    assert outs == golden
    return samples


def test_bench_fir(benchmark):
    circuit = compile_cached(extras.FIR)
    benchmark(fir_stream, circuit, 30)
    benchmark.extra_info["netlist"] = circuit.stats()


def cpu_run(circuit, n):
    from repro.stdlib.extras import assemble
    from repro.testbench import Testbench

    tb = Testbench(circuit)
    words = assemble(f"""
    LDI 1
    STA 15
    LDI {n}
    STA 0
    LDI 0
    STA 1
    LDA 1
    ADD 0
    STA 1
    LDA 0
    SUB 15
    STA 0
    JNZ 6
    LDA 1
    HLT
    """)
    tb.reset(cycles=1, iload=0, iaddr=0, idata=0)
    for addr, word in enumerate(words):
        tb.drive(iload=1, iaddr=addr, idata=word).clock()
    tb.drive(iload=0)
    for _ in range(250):
        tb.clock()
        if str(tb.sim.peek_bit("halted")) == "1":
            break
    assert tb.peek_int("accout") == n * (n + 1) // 2
    return tb.sim.cycle


def test_cpu_sums_triangular_numbers():
    circuit = compile_cached(extras.TINYCPU)
    assert cpu_run(circuit, 6) > 0


def test_bench_tinycpu(benchmark):
    circuit = compile_cached(extras.TINYCPU)
    cycles = benchmark(cpu_run, circuit, 5)
    benchmark.extra_info["netlist"] = circuit.stats()
    benchmark.extra_info["cycles_per_program"] = cycles
