"""E7 -- the section-8 semantics example (Fig. c) and its evaluation
sequence.

Reproduces: the component's switch behaviour, a legal firing sequence
(the paper prints one possible sequence; any topologically consistent
order is correct -- "there are many ways of propagating the signals
sequentially; however all will lead to the same result"), and checks the
determinism claim by comparing results across different poke orders.
"""

import pytest

from repro.stdlib import programs

from zeus_bench_utils import compile_cached

INPUTS = dict(a=1, b=1, c=0, x=1, y=0, rin=1)


def fire_once(circuit, inputs):
    sim = circuit.simulator(record_firing=True)
    for k, v in inputs.items():
        sim.poke(k, v)
    sim.step()
    return sim


def test_result_independent_of_declaration_order():
    circuit = compile_cached(programs.SECTION8)
    results = set()
    import itertools

    for perm in itertools.permutations(INPUTS.items(), 6):
        sim = circuit.simulator()
        for k, v in perm:
            sim.poke(k, v)
        sim.step()
        results.add(str(sim.peek("out")[0]))
        if len(results) > 1:
            break
    assert results == {"1"}


def test_firing_sequence_is_topological():
    circuit = compile_cached(programs.SECTION8)
    sim = fire_once(circuit, INPUTS)
    order = [name for name, _ in sim.firing_log]
    pos = {name: i for i, name in enumerate(order)}
    # The paper's constraints: out fires after its sources; rout after the
    # register (which is a source); the if-nodes after their guards.
    assert pos["fig.out"] > pos["fig.a"]
    assert pos["fig.out"] > pos["fig.b"]
    assert pos["fig.out"] > pos["fig.x"]
    assert pos["fig.out"] > pos["fig.y"]
    assert "fig.r.out" in pos


def test_evaluation_sequence_table():
    """Regenerate a 'possible evaluation sequence' like the paper's
    '2(0), rout(0), rin(1), 1(1), a(1), c(0), b(1), x(1), y(1), out(1)'."""
    circuit = compile_cached(programs.SECTION8)
    sim = fire_once(circuit, INPUTS)
    named = [(n, str(v)) for n, v in sim.firing_log if not n.startswith("$")]
    # All eight user-visible signals (6 inputs, out, rout, r pins) fired.
    fired = {n for n, _ in named}
    for sig in ("fig.a", "fig.b", "fig.c", "fig.x", "fig.y", "fig.rin",
                "fig.out", "fig.rout"):
        assert sig in fired
    # And the values of the sequence are the expected ones.
    values = dict(named)
    assert values["fig.out"] == "1"   # AND(a, b) through the x switch


def test_bench_firing(benchmark):
    circuit = compile_cached(programs.SECTION8)

    def run():
        sim = circuit.simulator()
        for k, v in INPUTS.items():
            sim.poke(k, v)
        sim.step(10)
        return sim.event_count

    events = benchmark(run)
    benchmark.extra_info["events_per_cycle"] = events
    assert events > 0
