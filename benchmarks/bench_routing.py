"""E6 -- the HISDL routing network translated to Zeus (section 4.2).

Reproduces: the recursive elaboration (n/2 * log2 n routers), the
butterfly permutation realised by the straight-through wiring, and
elaboration scaling with network size -- the point of the example being
that the recursive Zeus text generates the whole network.
"""

import math

import pytest

import repro
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def butterfly(n):
    def perm(n, xs):
        if n == 2:
            return xs
        top = perm(n // 2, [xs[2 * i] for i in range(n // 2)])
        bottom = perm(n // 2, [xs[2 * i + 1] for i in range(n // 2)])
        return top + bottom

    return perm(n, list(range(n)))


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_router_count(n):
    circuit = compile_cached(programs.routing(n))
    routers = [i for i in circuit.design.instances if i.type.name == "router"]
    expected = (n // 2) * int(math.log2(n))
    assert len(routers) == expected


@pytest.mark.parametrize("n", [4, 8, 16])
def test_permutation(n):
    circuit = compile_cached(programs.routing(n))
    sim = circuit.simulator()
    for j in range(n):
        sim.poke(f"input[{j}]", j + 1)
    sim.step()
    outs = [sim.peek_int(f"output[{j}]") for j in range(n)]
    assert outs == [v + 1 for v in butterfly(n)]


def route_all(circuit, n):
    sim = circuit.simulator()
    for j in range(n):
        sim.poke(f"input[{j}]", (j * 37 + 5) % 1024)
    sim.step()
    return [sim.peek_int(f"output[{j}]") for j in range(n)]


@pytest.mark.parametrize("n", [8, 16, 32])
def test_bench_routing_simulation(benchmark, n):
    circuit = compile_cached(programs.routing(n))
    outs = benchmark(route_all, circuit, n)
    benchmark.extra_info["n"] = n
    benchmark.extra_info["nets"] = circuit.stats()["nets"]
    assert sorted(outs) == sorted((j * 37 + 5) % 1024 for j in range(n))


@pytest.mark.parametrize("n", [8, 32])
def test_bench_recursive_elaboration(benchmark, n):
    text = programs.routing(n)
    circuit = benchmark(lambda: repro.compile_text(text))
    benchmark.extra_info["n"] = n
    routers = [i for i in circuit.design.instances if i.type.name == "router"]
    assert len(routers) == (n // 2) * int(math.log2(n))
