"""E4 -- the H-tree layout (paper section 10, Fig. htree(4)).

Reproduces the headline area result: the H-tree layout of an n-leaf tree
occupies a sqrt(n) x sqrt(n) square (linear area), while the naive
top-down tree layout needs Theta(n log n).  The series regenerated here
is the area-vs-n table for both layouts plus the ratio trend.
"""

import math

import pytest

from repro.stdlib import programs

from zeus_bench_utils import compile_cached


AREAS = {}


def area_of(kind: str, n: int) -> int:
    key = (kind, n)
    if key not in AREAS:
        if kind == "htree":
            plan = compile_cached(programs.htree(n)).layout()
        else:
            plan = compile_cached(programs.trees(n), top="b").layout()
        AREAS[key] = plan.area
    return AREAS[key]


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_htree_area_is_linear(n):
    side = int(math.sqrt(n))
    assert area_of("htree", n) == side * side == n


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_naive_tree_area_is_n_log_n(n):
    assert area_of("naive", n) == (n // 2) * int(math.log2(n))


def test_ratio_grows_like_log_n():
    """The crossover shape: naive/htree area ratio = log2(n)/2."""
    for n in (16, 64, 256):
        ratio = area_of("naive", n) / area_of("htree", n)
        assert ratio == pytest.approx(math.log2(n) / 2)


def test_htree_is_square():
    plan = compile_cached(programs.htree(64)).layout()
    assert plan.width == plan.height == 8


def test_bench_htree_layout(benchmark):
    circuit = compile_cached(programs.htree(256))

    def layout():
        return circuit.layout()

    plan = benchmark(layout)
    benchmark.extra_info["n"] = 256
    benchmark.extra_info["area"] = plan.area
    assert plan.area == 256


def test_bench_htree_elaboration(benchmark):
    import repro

    text = programs.htree(256)
    circuit = benchmark(lambda: repro.compile_text(text))
    leaves = [i for i in circuit.design.instances if i.type.name == "leaftype"]
    assert len(leaves) == 256
