"""E12 -- compiler throughput over generated programs of growing size.

The implicit engineering claim of an HDL: the toolchain itself scales.
We generate synthetic programs (chains of gate components), and measure
parse / elaborate / check separately.
"""

import pytest

import repro
from repro.core.checker import check
from repro.core.elaborate import elaborate
from repro.lang import parse


def generate_program(n_components: int) -> str:
    """A chain of n pass/invert components, alternating connections."""
    parts = [
        "TYPE inv = COMPONENT (IN a: boolean; OUT y: boolean) IS\n"
        "BEGIN y := NOT a END;\n"
        "chain = COMPONENT (IN a: boolean; OUT y: boolean) IS\n"
        f"SIGNAL g: ARRAY [1..{n_components}] OF inv;\n"
        "BEGIN\n"
        "    g[1].a := a;\n"
        f"    FOR i := 2 TO {n_components} DO g[i].a := g[i-1].y END;\n"
        f"    y := g[{n_components}].y\n"
        "END;\n"
        "SIGNAL top: chain;\n"
    ]
    return "".join(parts)


SIZES = [50, 200, 800]


@pytest.mark.parametrize("n", SIZES)
def test_generated_program_is_correct(n):
    circuit = repro.compile_text(generate_program(n))
    sim = circuit.simulator()
    sim.poke("a", 1)
    sim.step()
    assert str(sim.peek_bit("y")) == str(1 if n % 2 == 0 else 0)


@pytest.mark.parametrize("n", SIZES)
def test_bench_parse(benchmark, n):
    text = generate_program(n)
    prog = benchmark(parse, text)
    benchmark.extra_info["components"] = n
    assert prog.decls


@pytest.mark.parametrize("n", SIZES)
def test_bench_elaborate(benchmark, n):
    prog = parse(generate_program(n))
    design = benchmark(lambda: elaborate(prog))
    benchmark.extra_info["components"] = n
    benchmark.extra_info["nets"] = design.netlist.stats()["nets"]
    assert design.netlist.stats()["gates"] == n


@pytest.mark.parametrize("n", SIZES)
def test_bench_check(benchmark, n):
    design = elaborate(parse(generate_program(n)))
    sink = benchmark(lambda: check(design, strict=False))
    benchmark.extra_info["components"] = n
    assert not sink.has_errors()


def test_scaling_is_roughly_linear():
    """Shape check: elaboration work per component stays bounded."""
    import time

    times = {}
    for n in (100, 400):
        prog = parse(generate_program(n))
        start = time.perf_counter()
        elaborate(prog)
        times[n] = time.perf_counter() - start
    # 4x the components should cost clearly less than 16x the time.
    assert times[400] < times[100] * 16
