"""Formal-verification benchmark driver: solver cost vs. simulation.

Two questions the zeusprove subsystem should answer with numbers, not
vibes:

* **BMC depth scaling** -- how does bounded model checking of the
  blackjack dealer (the repo's densest sequential design) scale with
  unrolling depth?  Reports wall-time, decisions, and expression nodes
  per depth, and whether the run completed or exhausted its budget.
* **Miter vs. co-simulation crossover** -- for the paper's
  rippleCarry(n) family, at what width does one formal miter proof
  beat exhaustively co-simulating all 2^(2n+1) input vectors?

Writes a ``zeus.bench.formal/1`` summary (default
``BENCH_formal.json``)::

    PYTHONPATH=src python benchmarks/bench_formal.py \
        --depths 0 1 2 --widths 2 4 6 8 --out BENCH_formal.json

Used by the CI prove-smoke job with small depths/widths, and by hand
to refresh the committed numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import time

import repro
from repro.analysis import exhaustive_equivalent
from repro.formal import FormalConfig, check_equivalence, prove
from repro.stdlib import programs

BENCH_SCHEMA = "zeus.bench.formal/1"


def _proof_row(report, elapsed: float) -> dict:
    return {
        "verdict": report.verdict,
        "elapsed_s": elapsed,
        "clauses": report.clauses,
        "decisions": report.stats.decisions,
        "sat_calls": report.stats.sat_calls,
        "depth_reached": report.depth_reached,
        "budget_exhausted": report.stats.budget_exhausted,
    }


def bench_bmc_depths(depths, budget):
    """BMC the blackjack FSM at each depth (induction off: this measures
    the unrolling, not the fixed-point search)."""
    circuit = repro.compile_text(programs.BLACKJACK, strict=False)
    rows = {}
    for depth in depths:
        cfg = FormalConfig(depth=depth, budget=budget, induction=False)
        t0 = time.perf_counter()
        report = prove(circuit, ["no-conflict"], cfg)
        rows[str(depth)] = _proof_row(report, time.perf_counter() - t0)
    return rows


def bench_miter_crossover(widths, budget):
    """Formal miter vs. exhaustive co-simulation on rippleCarry(n) pairs
    (self-equivalence: both methods must answer "equivalent")."""
    rows = {}
    for width in widths:
        a = repro.compile_text(programs.ripple_carry(width), top="adder")
        b = repro.compile_text(programs.ripple_carry(width), top="adder")
        cfg = FormalConfig(budget=budget)

        t0 = time.perf_counter()
        formal = check_equivalence(a, b, cfg)
        formal_s = time.perf_counter() - t0

        bits = 2 * width + 1
        t0 = time.perf_counter()
        cosim = exhaustive_equivalent(a, b, max_bits=bits)
        cosim_s = time.perf_counter() - t0

        if formal.verdict != "proved" or not cosim.equivalent:
            raise RuntimeError(
                f"width {width}: formal={formal.verdict} "
                f"cosim={cosim.equivalent}")
        rows[str(width)] = {
            "input_bits": bits,
            "formal": _proof_row(formal, formal_s),
            "cosim": {"elapsed_s": cosim_s,
                      "vectors": cosim.vectors_checked},
            "formal_speedup": (cosim_s / formal_s) if formal_s else 0.0,
        }
    return rows


def run_benchmarks(depths, widths, budget):
    return {
        "schema": BENCH_SCHEMA,
        "bmc_blackjack": bench_bmc_depths(depths, budget),
        "miter_vs_cosim_ripple": bench_miter_crossover(widths, budget),
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--depths", type=int, nargs="+", default=[0, 1, 2],
                    help="BMC unrolling depths to time (default 0 1 2)")
    ap.add_argument("--widths", type=int, nargs="+", default=[2, 4, 6, 8],
                    help="rippleCarry widths to time (default 2 4 6 8)")
    ap.add_argument("--budget", type=int, default=50_000,
                    help="solver decision budget per run (default 50000)")
    ap.add_argument("--out", default="BENCH_formal.json",
                    help="summary JSON path (default BENCH_formal.json)")
    args = ap.parse_args(argv)

    summary = run_benchmarks(args.depths, args.widths, args.budget)

    for depth, row in summary["bmc_blackjack"].items():
        print(f"bmc blackjack depth {depth}: {row['verdict']:>8s}  "
              f"{row['elapsed_s']:8.3f}s  {row['decisions']:>8d} decisions"
              f"{'  (budget exhausted)' if row['budget_exhausted'] else ''}")
    for width, row in summary["miter_vs_cosim_ripple"].items():
        print(f"ripple({width}) miter {row['formal']['elapsed_s']:8.3f}s  "
              f"cosim {row['cosim']['elapsed_s']:8.3f}s "
              f"({row['cosim']['vectors']} vectors)  "
              f"speedup {row['formal_speedup']:.1f}x")
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_formal_summary_shape(tmp_path):
    summary = run_benchmarks(depths=[0], widths=[2], budget=20_000)
    assert summary["schema"] == BENCH_SCHEMA
    bmc = summary["bmc_blackjack"]["0"]
    assert bmc["verdict"] in ("proved", "unknown")
    assert bmc["decisions"] >= 0 and bmc["clauses"] > 0
    ripple = summary["miter_vs_cosim_ripple"]["2"]
    assert ripple["formal"]["verdict"] == "proved"
    assert ripple["cosim"]["vectors"] == 1 << ripple["input_bits"]


if __name__ == "__main__":
    raise SystemExit(main())
