"""E1 -- the adder family (paper sections 3.2 and 10, Fig. Adder).

Reproduces: half adder / full adder truth tables, the fixed-width
rippleCarry4 vs. the parameterized rippleCarry(n) equivalence, the layout
row figure, and elaboration/simulation scaling over the width sweep.
"""

import random

import pytest

import repro
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def simulate_adder(circuit, trials, seed=0, engine="auto"):
    width = len(circuit.netlist.port("a").nets)
    sim = circuit.simulator(engine=engine)
    rng = random.Random(seed)
    checked = 0
    for _ in range(trials):
        a = rng.randrange(1 << width)
        b = rng.randrange(1 << width)
        cin = rng.randrange(2)
        sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
        sim.step()
        got = sim.peek_int("s") + (int(sim.peek_bit("cout")) << width)
        assert got == a + b + cin
        checked += 1
    return checked


class TestFullAdderExhaustive:
    def test_truth_table(self):
        circuit = compile_cached(programs.ADDERS, top="adder4")
        sim = circuit.simulator()
        for a in range(16):
            for b in range(16):
                for cin in (0, 1):
                    sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
                    sim.step()
                    got = sim.peek_int("s") + 16 * int(sim.peek_bit("cout"))
                    assert got == a + b + cin


def test_fixed_equals_parameterized():
    """rippleCarry4 'is equivalent to' rippleCarry(4) (the paper's words)."""
    c4 = compile_cached(programs.ADDERS, top="adder4")
    cn = compile_cached(programs.ADDERS, top="adder")
    s4 = c4.simulator()
    sn = cn.simulator()
    for a in range(0, 16, 3):
        for b in range(0, 16, 5):
            for sim in (s4, sn):
                sim.poke("a", a); sim.poke("b", b); sim.poke("cin", 1)
                sim.step()
            assert s4.peek_int("s") == sn.peek_int("s")
            assert str(s4.peek_bit("cout")) == str(sn.peek_bit("cout"))


def test_layout_row_figure():
    """Fig. Adder: the four full adders in a left-to-right row."""
    plan = compile_cached(programs.ADDERS, top="adder").layout()
    assert plan.width == 4
    columns = sorted({r.x for name, r in plan.iter_cells() if "add[" in name})
    assert columns == [0, 1, 2, 3]  # one full adder per column


@pytest.mark.parametrize("engine", ["levelized", "dataflow"])
@pytest.mark.parametrize("width", [4, 8, 16, 32])
def test_bench_simulation_scaling(benchmark, width, engine):
    circuit = compile_cached(programs.ripple_carry(width), top="adder")
    benchmark.extra_info["width"] = width
    benchmark.extra_info["nets"] = circuit.stats()["nets"]
    benchmark.extra_info["engine"] = engine
    checked = benchmark(simulate_adder, circuit, 20, engine=engine)
    assert checked == 20


@pytest.mark.parametrize("width", [4, 16, 64])
def test_bench_elaboration_scaling(benchmark, width):
    text = programs.ripple_carry(width)

    def compile_fresh():
        return repro.compile_text(text, top="adder")

    circuit = benchmark(compile_fresh)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["gates"] = circuit.stats()["gates"]
    # 5 gates per full adder: shape of the elaborated netlist.
    assert circuit.stats()["gates"] == 5 * width
