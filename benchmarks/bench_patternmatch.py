"""E5 -- the systolic pattern matcher (paper section 10) and its
"possible computation sequence" figure.

Reproduces: match results against a golden software matcher (with and
without wildcards), the systolic data-movement table (the paper's final
figure: pattern chars move right, string chars move left, results travel
with the string), and throughput scaling over the cell count.
"""

import pytest

from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def run_matcher(circuit, pattern, string, wild=None):
    L = len(pattern)
    wild = wild or [0] * L
    padded = [0] * L + list(string)
    sim = circuit.simulator()
    for p in ("pattern", "string", "endofpattern", "wild", "resultin"):
        sim.poke(p, 0)
    sim.poke("RSET", 1)
    sim.step(L + 2)
    sim.poke("RSET", 0)
    n_align = len(string) - L + 1
    out = []
    for t in range(2 * (L + max(n_align, 1)) + 3 * L + 4):
        if t % 2 == 0:
            j = (t // 2) % L
            sim.poke("pattern", pattern[j])
            sim.poke("endofpattern", 1 if j == L - 1 else 0)
            sim.poke("wild", wild[j])
            k = t // 2
            sim.poke("string", padded[k] if k < len(padded) else 0)
        else:
            for p in ("pattern", "endofpattern", "wild", "string"):
                sim.poke(p, 0)
        sim.step()
        out.append(str(sim.peek_bit("result")))
    return [out[2 * (m + L) + 3 * L - 1] for m in range(n_align)]


def golden(pattern, string, wild=None):
    L = len(pattern)
    wild = wild or [0] * L
    return [
        "1" if all(wild[j] or string[k + j] == pattern[j] for j in range(L))
        else "0"
        for k in range(len(string) - L + 1)
    ]


def test_results_match_golden_suite():
    circuit = compile_cached(programs.patternmatch(3))
    cases = [
        ([1, 0, 1], [1, 0, 1, 1, 0, 1, 0], None),
        ([1, 1, 0], [1, 1, 0, 1, 1, 0, 0, 1], None),
        ([1, 0, 1], [1, 0, 1, 1, 0, 1, 0], [0, 1, 0]),
        ([0, 0, 0], [0, 0, 0, 1, 0, 0, 0], None),
    ]
    for pattern, string, wild in cases:
        assert run_matcher(circuit, pattern, string, wild) == golden(
            pattern, string, wild
        )


def test_computation_sequence_figure():
    """The paper's final figure: snapshot table of p/s positions over
    time -- pattern chars advance one cell right per cycle, string chars
    one cell left, meeting at matching parities."""
    circuit = compile_cached(programs.patternmatch(3))
    sim = circuit.simulator()
    for p in ("pattern", "string", "endofpattern", "wild", "resultin"):
        sim.poke(p, 0)
    sim.poke("RSET", 1); sim.step(5); sim.poke("RSET", 0)
    sim.poke("pattern", 1); sim.poke("string", 1)
    sim.step()
    sim.poke("pattern", 0); sim.poke("string", 0)
    table = []
    for _ in range(3):
        sim.step()
        row = {
            "p": [str(sim.peek_bit(f"match.pe[{i}].comp.p.out")) for i in (1, 2, 3)],
            "s": [str(sim.peek_bit(f"match.pe[{i}].comp.s.out")) for i in (1, 2, 3)],
        }
        table.append(row)
    assert [r["p"].index("1") for r in table] == [0, 1, 2]
    assert [r["s"].index("1") for r in table] == [2, 1, 0]


@pytest.mark.parametrize("length", [3, 5, 9])
def test_bench_matcher_scaling(benchmark, length):
    circuit = compile_cached(programs.patternmatch(length))
    pattern = [(i % 2) for i in range(length)]
    string = [(i % 3) % 2 for i in range(3 * length)]
    result = benchmark(run_matcher, circuit, pattern, string)
    benchmark.extra_info["length"] = length
    benchmark.extra_info["cells"] = length
    assert result == golden(pattern, string)


def test_bench_elaboration(benchmark):
    import repro

    text = programs.patternmatch(15)
    circuit = benchmark(lambda: repro.compile_text(text))
    assert circuit.stats()["registers"] == 15 * 6
