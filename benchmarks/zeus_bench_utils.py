"""Shared helper functions for the experiment benchmarks (E1-E12, DESIGN.md).

Every benchmark both *measures* (via pytest-benchmark) and *verifies the
shape* of its experiment: who wins, by roughly what factor, where the
crossovers fall.  Numbers are recorded in ``benchmark.extra_info`` so the
EXPERIMENTS.md tables can be regenerated from a benchmark run.
"""

from __future__ import annotations

import pytest

import repro

_CACHE: dict[tuple, repro.Circuit] = {}


def compile_cached(text: str, top: str | None = None) -> repro.Circuit:
    key = (hash(text), top)
    if key not in _CACHE:
        _CACHE[key] = repro.compile_text(text, top=top)
    return _CACHE[key]


@pytest.fixture
def cached():
    return compile_cached
