"""zeustime benchmark: STA runtime vs. design size.

Runs :func:`repro.timing.analyze_timing` (unit model, SAT pruning on)
over the scalable stdlib generators -- ripple-carry adders of growing
width plus the comparison-tree program -- and records analyses/sec and
the reported critical depth for each size.  The depth doubles as a
regression canary: under the unit model it must equal the historical
``netstats.logic_depth`` exactly.

Results are merged into the repo-root ``BENCH_simulator.json`` under a
``timing`` key.  Used by hand to refresh the committed numbers and by
``scripts/bench_check.py`` in CI::

    PYTHONPATH=src python benchmarks/bench_timing.py \
        --repeat 3 --out BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.analysis import netstats
from repro.stdlib import programs
from repro.timing import analyze_timing

from bench_batched import merge_into_summary

ADDER_WIDTHS = (4, 8, 16, 32)


def _workloads():
    """(label, program text) pairs, small to large."""
    pairs = [(f"ripple{w}", programs.ripple_carry(w))
             for w in ADDER_WIDTHS]
    pairs.append(("trees", programs.TREES))
    return pairs


def measure(circuit, repeat):
    """Full-analysis rate (compile excluded) and the reported depth."""
    report = analyze_timing(circuit, k=4)  # warm + correctness sample
    expected = netstats.logic_depth(circuit.netlist)
    if report.worst_arrival != expected:
        raise RuntimeError(
            f"unit STA depth {report.worst_arrival} != "
            f"logic_depth {expected}; not benchmarking a wrong answer")
    t0 = time.perf_counter()
    for _ in range(repeat):
        analyze_timing(circuit, k=4)
    elapsed = time.perf_counter() - t0
    return {
        "analyses_per_s": repeat / elapsed if elapsed > 0 else 0.0,
        "worst_arrival": report.worst_arrival,
        "paths_examined": report.paths_examined,
        "sat_calls": report.solver.sat_calls,
    }


def run_benchmark(repeat=3):
    results = {"model": "unit", "paths": 4, "repeat": repeat,
               "workloads": {}}
    for label, text in _workloads():
        circuit = repro.compile_text(text)
        entry = measure(circuit, repeat)
        entry["gates"] = circuit.netlist.stats()["gates"]
        results["workloads"][label] = entry
    return results


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=3,
                    help="analyses per workload (default 3)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    args = ap.parse_args(argv)

    results = run_benchmark(repeat=args.repeat)
    for label, r in results["workloads"].items():
        print(f"{label:10s} {r['gates']:>5d} gates   depth "
              f"{r['worst_arrival']:>3d}   "
              f"{r['analyses_per_s']:>8.2f} analyses/s   "
              f"({r['sat_calls']} SAT calls)")
    summary = merge_into_summary(args.out, results, key="timing")
    assert summary["timing"] == results
    print(f"wrote {args.out}")
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_timing_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(repeat=1)
    for label, r in results["workloads"].items():
        assert r["analyses_per_s"] > 0, label
        assert r["worst_arrival"] > 0, label
    # Depth grows with adder width: each extra bit deepens the carry.
    depths = [results["workloads"][f"ripple{w}"]["worst_arrival"]
              for w in ADDER_WIDTHS]
    assert depths == sorted(depths) and depths[0] < depths[-1]
    summary = merge_into_summary(str(out), results, key="timing")
    assert summary["timing"]["model"] == "unit"


if __name__ == "__main__":
    raise SystemExit(main())
