"""Ablations of the design decisions DESIGN.md calls out.

A1 -- **lazy instantiation** ("this hardware is only generated if it is
used", section 4.2): measure how much hardware the laziness prunes in
the recursive programs, and show that the recursion *depends* on it.

A2 -- **identical-connection deduplication** (section 4.3): the paper's
wiring style states each connection from both sides; count the raw vs.
deduplicated edges on the paper programs.

A3 -- **NUM decode sharing**: the elaborator caches one EQUAL decode
gate per (address, word); compare gate counts against the unshared
2x-per-word alternative.

A4 -- **guard gate caching** for ELSIF chains: the Blackjack machine's
state decoding reuses NOT/AND guard gates; measure the share of gates
the caches save.
"""

import pytest

import repro
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


class TestLazinessAblation:
    def test_recursive_programs_require_laziness(self):
        """htree(n)'s declaration recurses unconditionally; only lazy
        instantiation terminates it.  Count the pruned instances."""
        circuit = compile_cached(programs.htree(16))
        # Generated: 1 + 4 + 16 htree levels' worth of leaf cells = 16
        # leaves; declared but never generated: the s[] arrays of the 16
        # leaf-level nodes (4 children each) and every leaf of the inner
        # nodes.
        leaves = [i for i in circuit.design.instances if i.type.name == "leaftype"]
        htrees = [i for i in circuit.design.instances if i.type.name == "htree"]
        assert len(leaves) == 16
        assert len(htrees) == 1 + 4 + 16  # top + the two generated levels
        # Without laziness the s declarations of the 16 leaf nodes would
        # instantiate 64 more htree(0) nodes -> infinite regress.

    def test_unused_hardware_is_pruned(self):
        text = """
        TYPE heavy = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL g: ARRAY [1..200] OF COMPONENT (IN p: boolean;
                                               OUT q: boolean) IS
        BEGIN q := NOT p END;
        BEGIN y := a END;
        SIGNAL u: heavy;
        """
        circuit = repro.compile_text(text)
        assert circuit.stats()["gates"] == 0  # all 200 pruned

    def test_bench_pruned_vs_used(self, benchmark):
        used = """
        TYPE heavy = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL g: ARRAY [1..200] OF COMPONENT (IN p: boolean;
                                               OUT q: boolean) IS
        BEGIN q := NOT p END;
        BEGIN
            g[1].p := a;
            FOR i := 2 TO 200 DO g[i].p := g[i-1].q END;
            y := g[200].q
        END;
        SIGNAL u: heavy;
        """

        def build():
            return repro.compile_text(used)

        circuit = benchmark(build)
        benchmark.extra_info["gates"] = circuit.stats()["gates"]
        assert circuit.stats()["gates"] == 200


class TestDedupAblation:
    @pytest.mark.parametrize(
        "program,top",
        [(programs.ripple_carry(8), "adder"), (programs.patternmatch(5), None)],
        ids=["adders", "patternmatch5"],
    )
    def test_paper_wiring_style_duplicates_edges(self, program, top):
        """The paper's examples state connections redundantly from both
        sides (fulladder wires h2.a twice; adjacent pattern-matcher cells
        each state their shared edges); without dedup these would be
        double drivers."""
        text = program
        circuit = repro.compile_text(text, top=top)
        raw = len(circuit.netlist.conns)
        unique = len(circuit.netlist.unique_conns())
        assert unique < raw  # redundancy exists...
        # ...and removing it is what makes the programs legal:
        assert not circuit.diagnostics.has_errors()

    def test_duplication_ratio_table(self):
        rows = {}
        for name, text, top in [
            ("adders", programs.ripple_carry(8), "adder"),
            ("trees", programs.trees(8), "a"),
            ("patternmatch", programs.patternmatch(7), None),
            ("routing", programs.routing(8), None),
        ]:
            circuit = repro.compile_text(text, top=top)
            raw = len(circuit.netlist.conns)
            unique = len(circuit.netlist.unique_conns())
            rows[name] = (raw, unique)
        # Both-sides wiring styles duplicate; single-sided ones do not.
        assert rows["adders"][0] > rows["adders"][1]
        assert rows["patternmatch"][0] > rows["patternmatch"][1]
        assert rows["trees"][0] == rows["trees"][1]


class TestDecodeSharing:
    def test_read_and_write_share_decoders(self):
        """memory reads and writes the same NUM index: the decode EQUAL
        gates are created once per word, not once per access."""
        circuit = compile_cached(programs.memory(16, 8, 4))
        equals = [g for g in circuit.netlist.gates if g.op == "EQUAL"]
        # One per word (16) plus nothing else.
        assert len(equals) == 16

    def test_distinct_addresses_get_distinct_decoders(self):
        text = """
        TYPE bo(n) = ARRAY [1..n] OF boolean;
        twoport = COMPONENT (IN ra, wa: bo(2); IN data: boolean;
                             IN we: boolean; OUT q: boolean) IS
        SIGNAL ram: ARRAY [0..3] OF ARRAY [1..1] OF REG;
        BEGIN
            IF we THEN ram[NUM(wa)].in := (data) END;
            q := ram[NUM(ra)].out
        END;
        SIGNAL u: twoport;
        """
        circuit = repro.compile_text(text)
        equals = [g for g in circuit.netlist.gates if g.op == "EQUAL"]
        assert len(equals) == 8  # 4 per address port


class TestGuardCaching:
    def test_elsif_guards_are_shared(self):
        """IF c1 ... ELSIF c2 ... ELSE builds NOT/AND chains; the caches
        keep them linear in the number of arms."""
        text = """
        TYPE t = COMPONENT (IN c1, c2, c3, a: boolean; OUT y: boolean;
                            z: ARRAY [1..4] OF multiplex) IS
        BEGIN
            IF c1 THEN z[1] := a; z[2] := a; z[3] := a; z[4] := a
            ELSIF c2 THEN z[1] := 0; z[2] := 0; z[3] := 0; z[4] := 0
            ELSIF c3 THEN z[1] := 1; z[2] := 1; z[3] := 1; z[4] := 1
            END;
            y := a; * := z
        END;
        SIGNAL u: t;
        """
        circuit = repro.compile_text(text)
        # Guards: 3 NOTs and 4 ANDs for the whole chain -- shared across
        # the four z bits (unshared would be ~4x as many).
        assert circuit.stats()["gates"] == 7
