#!/usr/bin/env python3
"""Regenerate the EXPERIMENTS.md tables from a live run.

Usage:  python benchmarks/report.py

Prints the measured series for E1 (adder scaling), E4 (H-tree areas),
E6 (router counts), E9 (fault detection), E10 (Zeus vs. switch level),
E12 (compiler throughput) and the program inventory, in the same shapes
EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
import time

import repro
from repro.analysis import logic_depth
from repro.baselines import SwitchSimulator, build_ripple_adder
from repro.core.checker import check
from repro.core.elaborate import elaborate
from repro.lang import parse
from repro.obs import spans as obs_spans
from repro.stdlib import extras, programs


def table(headers: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def e1_adders() -> None:
    print("\n== E1: adder scaling ==")
    rows = []
    for w in (4, 8, 16, 32):
        c = repro.compile_text(programs.ripple_carry(w), top="adder")
        s = c.stats()
        rows.append([w, s["gates"], s["nets"], logic_depth(c.netlist)])
    print(table(["width", "gates", "nets", "depth"], rows))


def e4_areas() -> None:
    print("\n== E4: H-tree vs naive tree layout area ==")
    rows = []
    for n in (4, 16, 64, 256):
        h = repro.compile_text(programs.htree(n)).layout()
        t = repro.compile_text(programs.trees(n), top="b").layout()
        rows.append([
            n,
            f"{h.width}x{h.height}={h.area}",
            f"{t.width}x{t.height}={t.area}",
            f"{t.area / h.area:.2f}",
        ])
    print(table(["n", "htree", "naive", "ratio"], rows))


def e6_routing() -> None:
    print("\n== E6: routing network size ==")
    rows = []
    for n in (2, 4, 8, 16, 32):
        c = repro.compile_text(programs.routing(n))
        routers = sum(1 for i in c.design.instances if i.type.name == "router")
        rows.append([n, routers, (n // 2) * int(math.log2(n)), c.stats()["nets"]])
    print(table(["n", "routers", "expected", "nets"], rows))


def e9_safety() -> None:
    print("\n== E9: fault detection ==")
    import importlib

    mod = importlib.import_module("bench_safety")
    rows = []
    for name, text, inputs, expected in mod.FAULTS:
        rows.append([name, mod.classify(text, inputs), expected])
    print(table(["fault", "detected", "expected"], rows))


def e10_vs_switch() -> None:
    print("\n== E10: Zeus gate level vs switch level (worst-case carry) ==")
    rows = []
    for w in (4, 8, 16):
        zc = repro.compile_text(programs.ripple_carry(w), top="adder")
        zsim = zc.simulator()
        t0 = time.perf_counter()
        zsim.poke("a", (1 << w) - 1); zsim.poke("b", 0); zsim.poke("cin", 1)
        zsim.step()
        zt = time.perf_counter() - t0
        sc, ports = build_ripple_adder(w)
        ssim = SwitchSimulator(sc)
        for i, nm in enumerate(ports["a"]):
            ssim.poke(nm, 1)
        for i, nm in enumerate(ports["b"]):
            ssim.poke(nm, 0)
        ssim.poke("cin", 1)
        t0 = time.perf_counter()
        sweeps = ssim.settle()
        st = time.perf_counter() - t0
        rows.append([
            w, zsim.event_count, f"{zt * 1e3:.2f}ms",
            sc.transistor_count, sweeps, ssim.component_scans,
            f"{st * 1e3:.1f}ms", f"{st / zt:.0f}x",
        ])
    print(table(
        ["width", "zeus events", "zeus t", "transistors", "sweeps",
         "scans", "switch t", "ratio"],
        rows,
    ))


def e12_compiler() -> None:
    print("\n== E12: compiler throughput ==")
    import importlib

    gen = importlib.import_module("bench_compiler").generate_program
    rows = []
    for n in (50, 200, 800):
        text = gen(n)
        t0 = time.perf_counter(); prog = parse(text)
        t1 = time.perf_counter(); design = elaborate(prog)
        t2 = time.perf_counter(); check(design, strict=False)
        t3 = time.perf_counter()
        rows.append([
            n, f"{(t1 - t0) * 1e3:.1f}ms", f"{(t2 - t1) * 1e3:.1f}ms",
            f"{(t3 - t2) * 1e3:.1f}ms", design.netlist.stats()["nets"],
        ])
    print(table(["components", "parse", "elaborate", "check", "nets"], rows))


def obs_phases() -> None:
    """Compile-phase timings per builtin, from the repro.obs span layer
    (the observability substrate future perf PRs regress against)."""
    print("\n== OBS: compile-phase timings (repro.obs spans) ==")
    rows = []
    inventory_src = {**programs.ALL_PROGRAMS, **extras.EXTRA_PROGRAMS}
    for name in ("adders", "mux4", "blackjack", "routing", "tinycpu"):
        src = inventory_src[name]
        obs_spans.REGISTRY.reset()
        repro.compile_text(src)
        t = obs_spans.REGISTRY.phase_totals()
        rows.append([
            name,
            f"{t.get('lex', 0) * 1e3:.1f}ms",
            f"{t.get('parse', 0) * 1e3:.1f}ms",
            f"{t.get('elaborate', 0) * 1e3:.1f}ms",
            f"{t.get('check', 0) * 1e3:.1f}ms",
            f"{t.get('compile', 0) * 1e3:.1f}ms",
        ])
    obs_spans.REGISTRY.reset()
    print(table(["program", "lex", "parse", "elaborate", "check", "total"],
                rows))


def obs_activity() -> None:
    """Simulator activity metrics on the blackjack FSM (64 cycles)."""
    print("\n== OBS: simulation activity (repro.obs metrics) ==")
    c = repro.compile_text(programs.ALL_PROGRAMS["blackjack"])
    sim = c.simulator(metrics=True)
    sim.poke("RSET", 1); sim.step()
    sim.poke("RSET", 0)
    t0 = time.perf_counter()
    sim.step(63)
    wall = time.perf_counter() - t0
    s = sim.metrics.summary()
    rows = [[
        "blackjack", s["cycles"], s["firings"],
        f"{s['firings_per_cycle_avg']:.0f}", s["gate_evals"],
        s["latches"], f"{63 / wall:,.0f}/s",
    ]]
    print(table(
        ["program", "cycles", "firings", "fire/cyc", "gate evals",
         "latches", "rate"],
        rows,
    ))
    hot = ", ".join(n for n, _, _ in sim.metrics.top_nets(5))
    print(f"hottest nets: {hot}")


def inventory() -> None:
    print("\n== program inventory ==")
    rows = []
    for name, src in {**programs.ALL_PROGRAMS, **extras.EXTRA_PROGRAMS}.items():
        c = repro.compile_text(src)
        s = c.stats()
        rows.append([
            name, s["nets"], s["gates"], s["connections"],
            s["registers"], logic_depth(c.netlist),
        ])
    print(table(["program", "nets", "gates", "conns", "regs", "depth"], rows))


def main() -> None:
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    print("EXPERIMENTS.md tables, regenerated live "
          "(see that file for the paper-vs-measured commentary)")
    e1_adders()
    e4_areas()
    e6_routing()
    e9_safety()
    e10_vs_switch()
    e12_compiler()
    obs_phases()
    obs_activity()
    inventory()


if __name__ == "__main__":
    main()
