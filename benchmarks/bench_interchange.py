"""Verilog interchange benchmark: emit/import throughput.

Measures, per stdlib workload, the structural-Verilog emit rate and
the read-back (parse + netlist rebuild) rate, and scales the reader
over generated ISCAS-style netlists of growing size (gates/sec).  A
round-trip co-simulation of each workload runs once first, so the
benchmark never times a wrong translation.

Results are merged into the repo-root ``BENCH_simulator.json`` under an
``interchange`` key.  Used by hand to refresh the committed numbers and
by ``scripts/bench_check.py`` in CI::

    PYTHONPATH=src python benchmarks/bench_interchange.py \
        --repeat 3 --out BENCH_simulator.json
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.analysis.roundtrip import cosimulate, round_trip
from repro.interchange import emit_verilog, generate_iscas, read_verilog
from repro.stdlib import programs

from bench_batched import merge_into_summary

WORKLOADS = ("mux4", "adders", "blackjack", "section8")
ISCAS_SIZES = (64, 256, 1024)


def measure(circuit, repeat):
    """Emit and import rates for one compiled design, correctness
    checked by one co-simulated round trip first."""
    rt = round_trip(circuit.design)
    res = cosimulate(rt, cycles=2, n_vectors=4)
    if not res.ok:
        raise RuntimeError(
            f"not benchmarking a wrong translation: {res.detail}")
    t0 = time.perf_counter()
    for _ in range(repeat):
        text, _ = emit_verilog(circuit.design)
    emit_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(repeat):
        read_verilog(text)
    import_elapsed = time.perf_counter() - t0
    return {
        "verilog_lines": len(text.splitlines()),
        "emit_per_s": repeat / emit_elapsed if emit_elapsed else 0.0,
        "import_per_s": repeat / import_elapsed if import_elapsed else 0.0,
    }


def measure_iscas(n_gates, repeat):
    """Reader throughput in gates/sec on a generated netlist."""
    text = generate_iscas(0, n_inputs=8, n_gates=n_gates, n_regs=4)
    design = read_verilog(text)  # warm + shape check
    gates = design.netlist.stats()["gates"]
    t0 = time.perf_counter()
    for _ in range(repeat):
        read_verilog(text)
    elapsed = time.perf_counter() - t0
    return {
        "gates": gates,
        "import_gates_per_s": gates * repeat / elapsed if elapsed else 0.0,
    }


def run_benchmark(repeat=3):
    results = {"repeat": repeat, "workloads": {}, "iscas": {}}
    for label in WORKLOADS:
        circuit = repro.compile_text(
            programs.ALL_PROGRAMS[label], name=label)
        entry = measure(circuit, repeat)
        entry["gates"] = circuit.netlist.stats()["gates"]
        results["workloads"][label] = entry
    for n_gates in ISCAS_SIZES:
        results["iscas"][f"iscas{n_gates}"] = measure_iscas(n_gates, repeat)
    return results


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repeat", type=int, default=3,
                    help="emits/imports per workload (default 3)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    args = ap.parse_args(argv)

    results = run_benchmark(repeat=args.repeat)
    for label, r in results["workloads"].items():
        print(f"{label:10s} {r['gates']:>5d} gates  "
              f"{r['verilog_lines']:>5d} lines   "
              f"{r['emit_per_s']:>8.2f} emits/s   "
              f"{r['import_per_s']:>8.2f} imports/s")
    for label, r in results["iscas"].items():
        print(f"{label:10s} {r['gates']:>5d} gates   "
              f"{r['import_gates_per_s']:>12,.0f} gates/s imported")
    summary = merge_into_summary(args.out, results, key="interchange")
    assert summary["interchange"] == results
    print(f"wrote {args.out}")
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_interchange_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(repeat=1)
    for label, r in results["workloads"].items():
        assert r["emit_per_s"] > 0, label
        assert r["import_per_s"] > 0, label
        assert r["verilog_lines"] > r["gates"], label
    sizes = [results["iscas"][f"iscas{n}"]["gates"] for n in ISCAS_SIZES]
    assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
    summary = merge_into_summary(str(out), results, key="interchange")
    assert summary["interchange"]["repeat"] == 1


if __name__ == "__main__":
    raise SystemExit(main())
