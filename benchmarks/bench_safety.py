"""E9 -- the safety claims of sections 1 and 4.7.

The paper's central argument: the static rules "prevent designers from
critical designs ... and preclude errors that are difficult to pinpoint",
backed by runtime checks whose necessity is justified by NP-completeness.

This benchmark runs an error-injection study: a catalogue of faulty
programs, each exercising one hazard class.  For each, we record where
Zeus catches it (compile time / run time) and confirm that the unchecked
DDL-style baseline silently computes *something* instead.
"""

import pytest

import repro
from repro.baselines import UncheckedSimulator
from repro.core.elaborate import elaborate
from repro.lang import CheckError, SimulationError, TypeError_, ZeusError, parse

from zeus_bench_utils import compile_cached

#: (name, program, inputs, expected detection phase)
FAULTS = [
    (
        "power_ground_short",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL p: boolean;
        BEGIN p := 1; p := 0; y := p END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "conditional_plus_unconditional",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean; z: multiplex) IS
        BEGIN z := 1; IF a THEN z := 0 END; y := a END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "conditional_boolean_local",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL p: boolean;
        BEGIN IF a THEN p := 1 END; y := p END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "combinational_loop",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL s1, s2: boolean;
        BEGIN s1 := NOT s2; s2 := NOT s1; y := s1 END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "boolean_aliasing",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL p, q: boolean;
        BEGIN p == q; p := a; y := q END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "assign_to_formal_in",
        """
        TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        BEGIN a := 1; y := a END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "unused_port",
        """
        TYPE inner = COMPONENT (IN p: boolean; OUT q: boolean) IS
        BEGIN q := p END;
        t = COMPONENT (IN a: boolean; OUT y: boolean) IS
        SIGNAL g: inner;
        BEGIN g.p := a; y := a END;
        SIGNAL u: t;
        """,
        {"a": 1},
        "static",
    ),
    (
        "runtime_double_drive",
        """
        TYPE t = COMPONENT (IN c1, c2: boolean; OUT y: boolean; z: multiplex) IS
        BEGIN IF c1 THEN z := 1 END; IF c2 THEN z := 0 END; y := c1 END;
        SIGNAL u: t;
        """,
        {"c1": 1, "c2": 1},
        "runtime",
    ),
    (
        "runtime_bus_fight",
        """
        TYPE drv = COMPONENT (IN en, v: boolean; o: multiplex) IS
        BEGIN IF en THEN o := v END END;
        t = COMPONENT (IN e1, e2: boolean; OUT y: boolean; bus: multiplex) IS
        SIGNAL d1, d2: drv;
        BEGIN
            d1(e1, 1, bus);
            d2(e2, 0, bus);
            y := e1
        END;
        SIGNAL u: t;
        """,
        {"e1": 1, "e2": 1},
        "runtime",
    ),
]


def classify(text, inputs):
    """Where does the Zeus toolchain catch this fault?"""
    try:
        circuit = repro.compile_text(text)
    except (CheckError, TypeError_, ZeusError):
        return "static"
    sim = circuit.simulator()
    for k, v in inputs.items():
        sim.poke(k, v)
    try:
        sim.step()
    except SimulationError:
        return "runtime"
    return "missed"


@pytest.mark.parametrize("name,text,inputs,expected", FAULTS,
                         ids=[f[0] for f in FAULTS])
def test_zeus_catches_fault(name, text, inputs, expected):
    assert classify(text, inputs) == expected


@pytest.mark.parametrize("name,text,inputs,expected", FAULTS,
                         ids=[f[0] for f in FAULTS])
def test_baseline_is_silent(name, text, inputs, expected):
    """The unchecked baseline never reports any of these: it either
    produces a (possibly wrong) value or oscillates quietly.

    Faults that Zeus rejects while *building* the netlist (the aliasing
    and parameter-direction rules are language-level concepts a DDL-style
    flat netlist does not even have) cannot be replayed on the baseline;
    for those the comparison point is precisely that the baseline's input
    language cannot express the distinction."""
    try:
        design = elaborate(parse(text))
    except ZeusError:
        assert name in ("boolean_aliasing", "assign_to_formal_in")
        return
    base = UncheckedSimulator(design, sweeps=3)
    for k, v in inputs.items():
        base.poke(k, v)
    base.step()  # must not raise
    assert base.peek("y") is not None


def test_detection_table():
    """The E9 summary row: 7/9 statically, 2/9 at runtime, 0 missed;
    baseline 0/9."""
    phases = [classify(text, inputs) for _, text, inputs, _ in FAULTS]
    assert phases.count("static") == 7
    assert phases.count("runtime") == 2
    assert phases.count("missed") == 0


def test_bench_static_checking_overhead(benchmark):
    """Cost of the whole static pipeline on a clean mid-sized design."""
    from repro.stdlib import programs

    text = programs.BLACKJACK

    def compile_checked():
        return repro.compile_text(text)

    circuit = benchmark(compile_checked)
    assert not circuit.diagnostics.has_errors()


def test_bench_runtime_check_overhead(benchmark):
    """Strict vs lenient simulation speed on a clean design (the cost of
    the 'burning transistors' runtime check is in the noise: the check is
    part of normal resolution)."""
    from repro.stdlib import programs

    circuit = compile_cached(programs.BLACKJACK)

    def run(strict):
        sim = circuit.simulator(strict=strict)
        sim.poke("RSET", 1); sim.poke("ycard", 0); sim.poke("value", 0)
        sim.step()
        sim.poke("RSET", 0)
        sim.step(30)
        return sim.cycle

    cycles = benchmark(run, True)
    assert cycles == 31
