"""zeusd service benchmark: compile cache and session multiplexing.

Two measurements, merged into the repo-root ``BENCH_simulator.json``
under a ``service`` key:

* **Compile throughput over HTTP** -- requests/sec against a live
  daemon at 1, 8 and 32 concurrent keep-alive clients, cold (every
  request a distinct source, so every request compiles) vs warm (the
  same sources again, so every request is a content-hash cache hit).
  The acceptance bar is 10x: warm-cache compiles must be at least that
  much faster than cold at the best client count.

* **Session multiplexing** -- aggregate session-cycles/sec of 32 sim
  sessions lane-muxed onto ONE shared batched simulator (lockstep
  ``step_all``) vs the same 32 sessions run sequentially as isolated
  scalar levelized simulators.  The bar is 5x.

Used by the CI benchmark-smoke job::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --requests 8 --cycles 40 --out BENCH_simulator.json \
        --min-warm-speedup 10 --min-mux-speedup 5
"""

from __future__ import annotations

import argparse
import threading
import time

import repro
from repro.core.simulator import Simulator
from repro.service import LaneMux, ZeusClient, serve_in_thread
from repro.stdlib.programs import ALL_PROGRAMS

from bench_batched import merge_into_summary

CLIENT_COUNTS = (1, 8, 32)

HALF = """
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
    s := XOR(a,b);
    cout := AND(a,b)
END;
SIGNAL h: halfadder;
"""


def _sources(clients: int, requests: int) -> list[list[str]]:
    """Per-client request lists of *distinct* sources (a comment nonce
    changes the content hash without changing the design)."""
    return [
        [f"<* nonce {c}/{r} *>\n{HALF}" for r in range(requests)]
        for c in range(clients)
    ]


def _hammer(port: int, sources: list[list[str]]) -> float:
    """All clients fire their request lists concurrently; returns
    aggregate requests/sec."""
    barrier = threading.Barrier(len(sources) + 1)
    errors: list[str] = []

    def worker(batch: list[str]) -> None:
        client = ZeusClient(port)
        try:
            barrier.wait()
            for source in batch:
                status, _ = client.compile(source)
                if status != 200:
                    errors.append(f"HTTP {status}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(batch,))
        for batch in sources
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"compile requests failed: {errors[:3]}")
    total = sum(len(batch) for batch in sources)
    return total / elapsed


def measure_compile(requests: int, client_counts=CLIENT_COUNTS) -> dict:
    """Cold vs warm compile requests/sec at each client count, against
    one daemon (cache cleared before every cold pass)."""
    per_clients: dict[str, dict] = {}
    with serve_in_thread(cache_size=1024) as runner:
        admin = ZeusClient(runner.port)
        try:
            for clients in client_counts:
                sources = _sources(clients, requests)
                admin.request("POST", "/v1/cache/clear")
                cold = _hammer(runner.port, sources)
                warm = _hammer(runner.port, sources)
                per_clients[str(clients)] = {
                    "cold_rps": cold,
                    "warm_rps": warm,
                    "warm_speedup": warm / cold,
                }
            _, report = admin.metrics()
        finally:
            admin.close()
    return {
        "requests_per_client": requests,
        "clients": per_clients,
        "cache_hit_rate": report["service"]["cache"]["hit_rate"],
    }


def measure_mux(sessions: int, cycles: int) -> dict:
    """32 lane-muxed sessions stepping in lockstep on one shared
    batched simulator vs the same sessions as sequential scalar runs."""
    circuit = repro.compile_text(
        ALL_PROGRAMS["blackjack"], "bj", strict=False
    )

    mux = LaneMux(circuit, lanes=sessions)
    for seed in range(sessions):
        mux.attach(seed)
    mux.step_all(1)  # warm: schedule + plane buffers built
    t0 = time.perf_counter()
    mux.step_all(cycles)
    mux_rate = sessions * cycles / (time.perf_counter() - t0)

    sims = [
        Simulator(circuit.design, strict=False, seed=seed,
                  engine="levelized")
        for seed in range(sessions)
    ]
    for sim in sims:
        sim.step()
    t0 = time.perf_counter()
    for sim in sims:
        sim.step(cycles)
    scalar_rate = sessions * cycles / (time.perf_counter() - t0)

    # the mux really ran every session: lane contract spot-check
    ref = Simulator(circuit.design, strict=False, seed=3,
                    engine="levelized")
    ref.step(1 + cycles)
    if mux.sessions[3].registers() != ref.registers():
        raise RuntimeError(
            "mux session diverged from scalar; not benchmarking a "
            "broken multiplexer"
        )
    return {
        "workload": "blackjack",
        "sessions": sessions,
        "cycles": cycles,
        "mux_cycles_per_s": mux_rate,
        "sequential_cycles_per_s": scalar_rate,
        "speedup": mux_rate / scalar_rate,
    }


def run_benchmark(requests=8, cycles=40, sessions=32,
                  client_counts=CLIENT_COUNTS) -> dict:
    return {
        "compile": measure_compile(requests, client_counts),
        "mux": measure_mux(sessions, cycles),
    }


def best_warm_speedup(results: dict) -> float:
    return max(
        entry["warm_speedup"]
        for entry in results["compile"]["clients"].values()
    )


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=8,
                    help="compile requests per client (default 8)")
    ap.add_argument("--cycles", type=int, default=40,
                    help="cycles per mux session (default 40)")
    ap.add_argument("--sessions", type=int, default=32,
                    help="muxed sessions (default 32)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    ap.add_argument("--min-warm-speedup", type=float, default=None,
                    help="fail unless warm/cold compile clears this bar")
    ap.add_argument("--min-mux-speedup", type=float, default=None,
                    help="fail unless mux/sequential clears this bar")
    args = ap.parse_args(argv)

    results = run_benchmark(args.requests, args.cycles, args.sessions)
    for clients, entry in sorted(
        results["compile"]["clients"].items(), key=lambda kv: int(kv[0])
    ):
        print(f"compile {int(clients):>2} clients: "
              f"cold {entry['cold_rps']:>8,.1f} req/s   "
              f"warm {entry['warm_rps']:>10,.1f} req/s   "
              f"({entry['warm_speedup']:.1f}x)")
    mux = results["mux"]
    print(f"mux {mux['sessions']} sessions: "
          f"{mux['mux_cycles_per_s']:>12,.0f} session-c/s   "
          f"sequential {mux['sequential_cycles_per_s']:>10,.0f}   "
          f"speedup {mux['speedup']:.1f}x")
    merge_into_summary(args.out, results, key="service")
    print(f"wrote {args.out}")

    failed = False
    if (args.min_warm_speedup is not None
            and best_warm_speedup(results) < args.min_warm_speedup):
        print(f"FAIL: warm-cache speedup {best_warm_speedup(results):.1f}x "
              f"< required {args.min_warm_speedup}x")
        failed = True
    if (args.min_mux_speedup is not None
            and mux["speedup"] < args.min_mux_speedup):
        print(f"FAIL: mux speedup {mux['speedup']:.2f}x "
              f"< required {args.min_mux_speedup}x")
        failed = True
    return 1 if failed else 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_service_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(requests=2, cycles=3, sessions=4,
                            client_counts=(1, 2))
    assert set(results["compile"]["clients"]) == {"1", "2"}
    assert results["compile"]["cache_hit_rate"] > 0
    assert results["mux"]["speedup"] > 0
    summary = merge_into_summary(str(out), results, key="service")
    assert summary["service"] == results


if __name__ == "__main__":
    raise SystemExit(main())
