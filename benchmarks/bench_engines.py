"""Engine benchmark driver: levelized vs dataflow cycles/sec.

Runs the `bench_blackjack`/`bench_adders` workloads on both simulation
engines, exports one ``zeus.metrics/1`` report per (workload, engine)
pair, and writes a ``zeus.bench.simulator/1`` summary (the repo-root
``BENCH_simulator.json``) recording cycles/sec and the speedup.

Used by the CI benchmark-smoke job::

    PYTHONPATH=src python benchmarks/bench_engines.py \
        --cycles 2000 --out BENCH_simulator.json --metrics-dir bench-out

and by hand to refresh the committed numbers.  ``--min-speedup`` makes
the run fail unless the blackjack levelized/dataflow ratio clears the
bar (CI uses 3.0, the acceptance threshold).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import repro
from repro.obs import metrics_report, validate_report, write_metrics
from repro.obs import spans as _spans
from repro.stdlib import programs

BENCH_SCHEMA = "zeus.bench.simulator/1"

#: (workload name, program text, top, reset/driven pokes)
WORKLOADS = [
    ("blackjack", lambda: programs.BLACKJACK, None,
     {"RSET": 0, "ycard": 0, "value": 0}),
    ("adders", lambda: programs.ripple_carry(16), "adder",
     {"a": 41389, "b": 27245, "cin": 1}),
]


def measure(text, top, pokes, engine, cycles, seed=0):
    """Simulate *cycles* cycles on *engine*; return the validated
    ``zeus.metrics/1`` report (with wall-clock cycles/sec)."""
    registry = _spans.REGISTRY
    registry.reset()
    circuit = repro.compile_text(text, top=top)
    sim = circuit.simulator(seed=seed, metrics=True, engine=engine)
    if sim.engine != engine:
        raise RuntimeError(f"wanted engine {engine}, got {sim.engine}")
    if "RSET" in pokes:
        sim.poke("RSET", 1)
        sim.step()
        sim.metrics.reset()
    for sig, val in pokes.items():
        sim.poke(sig, val)
    t0 = time.perf_counter()
    sim.step(cycles)
    elapsed = time.perf_counter() - t0
    report = metrics_report(circuit, sim, registry, elapsed=elapsed, top=10)
    validate_report(report)
    registry.reset()
    return report


def compact(report):
    """A committable subset of a ``zeus.metrics/1`` report: scalars and
    top tables, without the per-cycle series and raw span list."""
    out = {k: v for k, v in report.items() if k != "compile"}
    if "compile" in report:
        out["compile"] = {"phases": report["compile"]["phases"]}
    out["sim"] = {
        k: v for k, v in report["sim"].items()
        if k not in ("firings_by_cycle", "steps_by_cycle")
    }
    return out


def run_benchmarks(cycles, metrics_dir=None, seed=0):
    """Measure every workload on both engines; return the summary dict."""
    results = {}
    for name, text_fn, top, pokes in WORKLOADS:
        text = text_fn()
        per_engine = {}
        for engine in ("levelized", "dataflow"):
            report = measure(text, top, pokes, engine, cycles, seed=seed)
            if metrics_dir:
                path = os.path.join(metrics_dir, f"{name}-{engine}.json")
                write_metrics(path, report)
            per_engine[engine] = compact(report)
        lev = per_engine["levelized"]["wall"]["cycles_per_s"]
        df = per_engine["dataflow"]["wall"]["cycles_per_s"]
        results[name] = {
            "cycles": cycles,
            "cycles_per_s": {"levelized": lev, "dataflow": df},
            "speedup": (lev / df) if df else 0.0,
            "reports": per_engine,
        }
    return {"schema": BENCH_SCHEMA, "workloads": results}


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=2000,
                    help="cycles to simulate per run (default 2000)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON path (default BENCH_simulator.json)")
    ap.add_argument("--metrics-dir", default=None,
                    help="also write per-run zeus.metrics/1 JSONs here")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail unless blackjack speedup clears this bar")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    if args.metrics_dir:
        os.makedirs(args.metrics_dir, exist_ok=True)
    summary = run_benchmarks(args.cycles, args.metrics_dir, seed=args.seed)

    for name, res in summary["workloads"].items():
        rates = res["cycles_per_s"]
        print(f"{name:10s} levelized {rates['levelized']:>10,.0f} c/s   "
              f"dataflow {rates['dataflow']:>10,.0f} c/s   "
              f"speedup {res['speedup']:.1f}x")
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        got = summary["workloads"]["blackjack"]["speedup"]
        if got < args.min_speedup:
            print(f"FAIL: blackjack speedup {got:.2f}x "
                  f"< required {args.min_speedup}x")
            return 1
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_engines_summary_shape(tmp_path):
    out_dir = str(tmp_path / "metrics")
    os.makedirs(out_dir)
    summary = run_benchmarks(cycles=20, metrics_dir=out_dir)
    assert summary["schema"] == BENCH_SCHEMA
    for name in ("blackjack", "adders"):
        res = summary["workloads"][name]
        assert res["cycles_per_s"]["levelized"] > 0
        assert res["cycles_per_s"]["dataflow"] > 0
        for engine in ("levelized", "dataflow"):
            assert res["reports"][engine]["sim"]["engine"] == engine
            exported = os.path.join(out_dir, f"{name}-{engine}.json")
            validate_report(json.loads(open(exported).read()))


if __name__ == "__main__":
    raise SystemExit(main())
