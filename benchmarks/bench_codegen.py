"""Codegen engine benchmark: lane throughput vs the interpreted batched engine.

Measures steady-state lane-cycles/sec of the exec-compiled codegen
engine (both plane backends: Python big-int and NumPy ``uint64`` word
arrays) on random-stimulus sweeps of the 16-bit ripple-carry adder,
against the interpreted batched engine at 1024 lanes -- the lane count
where the batched engine's per-opcode dispatch cost is already fully
amortized.  Results are merged into the repo-root
``BENCH_simulator.json`` under a ``codegen`` key.

Used by the CI benchmark-smoke job::

    PYTHONPATH=src python benchmarks/bench_codegen.py \
        --cycles 30 --out BENCH_simulator.json --min-speedup 10

The acceptance bar is 10x: the best point on the codegen lane-scaling
curve must beat the interpreted batched engine at 1024 lanes by at
least that factor (measured ~20x at the 16384-lane sweet spot here;
the NumPy backend takes over past ``NUMPY_LANE_THRESHOLD`` lanes,
where big-int carries start to hurt).
"""

from __future__ import annotations

import argparse
import random
import time

import repro
from repro.core.codegen import HAVE_NUMPY
from repro.stdlib import programs

from bench_batched import merge_into_summary

LANE_CURVE = (1024, 4096, 16384, 65536, 262144)

#: Lane count of the interpreted-batched comparison bar.
BASELINE_LANES = 1024


def _stimuli(rng, lanes):
    return {
        "a": [rng.randrange(1 << 16) for _ in range(lanes)],
        "b": [rng.randrange(1 << 16) for _ in range(lanes)],
        "cin": [rng.randint(0, 1) for _ in range(lanes)],
    }


def _measure(circuit, stim, lanes, cycles, engine, backend="auto"):
    """Steady-state lane-cycles/sec (one warm-up step before timing)."""
    kwargs = {"engine": engine, "lanes": lanes}
    if engine == "codegen":
        kwargs["backend"] = backend
    sim = circuit.simulator(**kwargs)
    if not sim._batched_fast:
        raise RuntimeError("adders must take the bit-parallel path")
    if engine == "codegen" and sim._cg is None:
        raise RuntimeError(f"codegen did not compile: {sim.engine_reason}")
    for name, values in stim.items():
        sim.poke_lanes(name, values)
    sim.step()
    t0 = time.perf_counter()
    sim.step(cycles)
    elapsed = time.perf_counter() - t0
    return (lanes * cycles) / elapsed, sim


def _check_adder(sim, stim):
    a, b, cin = stim["a"][0], stim["b"][0], stim["cin"][0]
    s = sim.peek_lane_int("s", 0)
    cout = sim.peek_lane_int("cout", 0)
    if ((cout << 16) | s) != a + b + cin:
        raise RuntimeError(
            "codegen adder result is wrong; not benchmarking a broken engine"
        )


def run_benchmark(cycles, seed=0, curve=LANE_CURVE):
    circuit = repro.compile_text(programs.ripple_carry(16), top="adder")
    rng = random.Random(seed)
    results = {
        "workload": "adders-sweep",
        "cycles": cycles,
        "baseline_lanes": BASELINE_LANES,
        "numpy_available": HAVE_NUMPY,
    }

    stim = _stimuli(rng, BASELINE_LANES)
    batched_rate, _ = _measure(
        circuit, stim, BASELINE_LANES, cycles, "batched"
    )

    backends = ("int", "numpy") if HAVE_NUMPY else ("int",)
    lane_curve: dict[str, dict[str, float]] = {b: {} for b in backends}
    best = {b: 0.0 for b in backends}
    for lanes in curve:
        lane_stim = stim if lanes == BASELINE_LANES else _stimuli(rng, lanes)
        for backend in backends:
            rate, sim = _measure(
                circuit, lane_stim, lanes, cycles, "codegen", backend
            )
            _check_adder(sim, lane_stim)
            lane_curve[backend][str(lanes)] = rate
            best[backend] = max(best[backend], rate)

    results["lane_curve"] = lane_curve
    results["lane_cycles_per_s"] = {
        f"batched_{BASELINE_LANES}": batched_rate,
        **{f"codegen_{b}_best": best[b] for b in backends},
    }
    results["speedup_vs_batched"] = max(best.values()) / batched_rate
    return results


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=30,
                    help="cycles per measurement (default 30)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail unless best-of-curve vs batched@1024 "
                         "clears this bar")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    results = run_benchmark(args.cycles, seed=args.seed)
    rates = results["lane_cycles_per_s"]
    base = rates[f"batched_{BASELINE_LANES}"]
    print(f"adders sweep  batched({BASELINE_LANES}) {base:>12,.0f} lane-c/s   "
          f"codegen best {max(v for k, v in rates.items() if 'codegen' in k):>12,.0f}"
          f" lane-c/s   speedup {results['speedup_vs_batched']:.1f}x")
    for backend, curve in results["lane_curve"].items():
        for lanes, rate in curve.items():
            print(f"  {backend:>5} {int(lanes):>7} lanes: "
                  f"{rate:>13,.0f} lane-cycles/s")
    merge_into_summary(args.out, results, key="codegen")
    print(f"wrote {args.out}")

    if (args.min_speedup is not None
            and results["speedup_vs_batched"] < args.min_speedup):
        print(f"FAIL: speedup {results['speedup_vs_batched']:.2f}x "
              f"< required {args.min_speedup}x")
        return 1
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_codegen_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(cycles=3, curve=(1024, 4096))
    assert results["speedup_vs_batched"] > 1
    assert set(results["lane_curve"]["int"]) == {"1024", "4096"}
    summary = merge_into_summary(str(out), results, key="codegen")
    assert summary["schema"] == "zeus.bench.simulator/1"
    assert summary["codegen"]["workload"] == "adders-sweep"
    merged = merge_into_summary(str(out), results, key="codegen")
    assert merged["codegen"] == results


if __name__ == "__main__":
    raise SystemExit(main())
