"""E10 -- "a simulator which is conceptually simpler than state-of-the-art
switch-level circuit simulators" (paper section 1).

The same ripple-carry adder is simulated at the Zeus gate level and at
the transistor level with the Bryant-style switch-level baseline.  The
shape to reproduce:

* the Zeus dataflow evaluation is **one pass** (every node fires once);
  the switch-level relaxation needs **several sweeps**, growing with the
  carry-chain length;
* per evaluated input vector, the switch-level simulator does orders of
  magnitude more node work (component scans over transistor groups);
* wall-clock per addition favours Zeus increasingly with width.
"""

import random

import pytest

from repro.baselines import SwitchSimulator, build_ripple_adder
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def zeus_add(circuit, width, vectors):
    sim = circuit.simulator()
    for a, b, cin in vectors:
        sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
        sim.step()
        got = sim.peek_int("s") + (int(sim.peek_bit("cout")) << width)
        assert got == a + b + cin
    return sim.event_count


def switch_add(circuit, ports, width, vectors):
    sim = SwitchSimulator(circuit)
    sweeps = 0
    for a, b, cin in vectors:
        for i, n in enumerate(ports["a"]):
            sim.poke(n, (a >> i) & 1)
        for i, n in enumerate(ports["b"]):
            sim.poke(n, (b >> i) & 1)
        sim.poke("cin", cin)
        sweeps += sim.settle()
        s = sum(
            (1 if str(sim.peek(n)) == "1" else 0) << i
            for i, n in enumerate(ports["s"])
        )
        cout = 1 if str(sim.peek(ports["cout"][0])) == "1" else 0
        assert s + (cout << width) == a + b + cin
    return sweeps, sim.component_scans


def vectors_for(width, count, seed=0):
    rng = random.Random(seed)
    vecs = [
        (rng.randrange(1 << width), rng.randrange(1 << width), rng.randrange(2))
        for _ in range(count - 1)
    ]
    # Include the worst case: a full-length carry ripple.
    vecs.append(((1 << width) - 1, 0, 1))
    return vecs


@pytest.mark.parametrize("width", [4, 8])
def test_shape_zeus_single_pass_vs_relaxation(width):
    zc = compile_cached(programs.ripple_carry(width), top="adder")
    sc, ports = build_ripple_adder(width)
    vecs = vectors_for(width, 4)
    zeus_add(zc, width, vecs)
    sweeps, scans = switch_add(sc, ports, width, vecs)
    # Zeus: one firing pass per vector.  Switch level: the worst-case
    # vector alone needs more sweeps than the Zeus pass count.
    assert sweeps / len(vecs) > 1.5
    # Work ratio: component scans vastly exceed Zeus events.
    zeus_events = zc.stats()["nets"]
    assert scans > 10 * zeus_events


def test_shape_sweeps_grow_with_width():
    sweeps_by_width = {}
    for width in (4, 8, 16):
        sc, ports = build_ripple_adder(width)
        sim = SwitchSimulator(sc)
        for i, n in enumerate(ports["a"]):
            sim.poke(n, 1)
        for i, n in enumerate(ports["b"]):
            sim.poke(n, 0)
        sim.poke("cin", 1)
        sweeps_by_width[width] = sim.settle()
    assert sweeps_by_width[8] > sweeps_by_width[4]
    assert sweeps_by_width[16] > sweeps_by_width[8]


@pytest.mark.parametrize("width", [4, 8])
def test_bench_zeus_gate_level(benchmark, width):
    circuit = compile_cached(programs.ripple_carry(width), top="adder")
    vecs = vectors_for(width, 5)
    events = benchmark(zeus_add, circuit, width, vecs)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["events"] = events


@pytest.mark.parametrize("width", [4, 8])
def test_bench_switch_level(benchmark, width):
    sc, ports = build_ripple_adder(width)
    vecs = vectors_for(width, 5)
    sweeps, scans = benchmark(switch_add, sc, ports, width, vecs)
    benchmark.extra_info["width"] = width
    benchmark.extra_info["sweeps"] = sweeps
    benchmark.extra_info["component_scans"] = scans
    benchmark.extra_info["transistors"] = sc.transistor_count


class TestAutomaticTranslation:
    """The strengthened comparison: the *same elaborated design* run at
    the gate level and, via automatic transistorization, at the switch
    level -- outputs must agree, work must diverge."""

    def test_cosimulation_agrees(self):
        from repro.baselines import TransistorizedSimulator

        circuit = compile_cached(programs.ripple_carry(4), top="adder")
        zsim = circuit.simulator()
        tsim = TransistorizedSimulator(circuit.design)
        for a, b, cin in vectors_for(4, 6, seed=5):
            for sim in (zsim, tsim):
                sim.poke("a", a); sim.poke("b", b); sim.poke("cin", cin)
                sim.step()
            assert zsim.peek_int("s") == tsim.peek_int("s")

    def test_bench_transistorized(self, benchmark):
        from repro.baselines import TransistorizedSimulator

        circuit = compile_cached(programs.ripple_carry(4), top="adder")
        tsim = TransistorizedSimulator(circuit.design)
        vecs = vectors_for(4, 3, seed=7)

        def run():
            for a, b, cin in vecs:
                tsim.poke("a", a); tsim.poke("b", b); tsim.poke("cin", cin)
                tsim.step()
            return tsim.peek_int("s")

        benchmark(run)
        benchmark.extra_info["transistors"] = tsim.transistor_count
