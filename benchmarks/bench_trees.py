"""E3 -- binary broadcast trees (paper section 10, Fig. binary tree).

Reproduces the iterative/recursive equivalence and the layout of the
recursive version; measures elaboration scaling of both formulations.
"""

import pytest

import repro
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_equivalence(n):
    """tree(n) and rtree(n) broadcast identically and use n-1 nodes."""
    for top in ("a", "b"):
        circuit = compile_cached(programs.trees(n), top=top)
        nodes = [i for i in circuit.design.instances if i.type.name == "q"]
        assert len(nodes) == n - 1
        sim = circuit.simulator()
        for v in (1, 0):
            sim.poke("in", v)
            sim.step()
            assert [str(x) for x in sim.peek("leaf")] == [str(v)] * n


def test_recursive_layout_figure():
    """Root on top, sub-trees side by side below (the paper's layout)."""
    plan = compile_cached(programs.trees(8), top="b").layout()
    cells = dict(plan.iter_cells())
    roots = [r for name, r in cells.items() if name.endswith(".root")]
    assert roots
    top_root = min(roots, key=lambda r: r.y)
    assert top_root.y == 0  # the root row is the top row
    assert plan.height == 3  # log2(8) levels of q cells


@pytest.mark.parametrize("top,n", [("a", 64), ("b", 64), ("a", 256), ("b", 256)])
def test_bench_elaboration(benchmark, top, n):
    text = programs.trees(n)

    def build():
        return repro.compile_text(text, top=top)

    circuit = benchmark(build)
    benchmark.extra_info["formulation"] = "iterative" if top == "a" else "recursive"
    benchmark.extra_info["n"] = n
    nodes = [i for i in circuit.design.instances if i.type.name == "q"]
    assert len(nodes) == n - 1


def test_bench_broadcast_simulation(benchmark):
    circuit = compile_cached(programs.trees(64), top="a")
    sim = circuit.simulator()

    def run():
        for v in (0, 1):
            sim.poke("in", v)
            sim.step()
        return sim.peek("leaf")

    leaves = benchmark(run)
    assert len(leaves) == 64
