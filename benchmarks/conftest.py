"""Pytest fixtures for the experiment benchmarks."""

import pytest

from zeus_bench_utils import compile_cached


@pytest.fixture
def cached():
    return compile_cached
