"""E8 -- mux4 (section 3.2) and the REG random-access memory (section 5).

Reproduces: the mux4 truth table and the RAM read/write behaviour with
NUM-decoded addressing, including the paper-sized 1024 x 16 memory, and
measures decode/elaboration scaling over memory depth.
"""

import random

import pytest

import repro
from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def test_mux4_full_truth_table():
    circuit = compile_cached(programs.MUX4)
    sim = circuit.simulator()
    for d in range(16):
        for sel in range(4):
            for g in (0, 1):
                sim.poke("d", d)
                sim.poke("a", [(sel >> 1) & 1, sel & 1])
                sim.poke("g", g)
                sim.step()
                want = 0 if g else (d >> sel) & 1
                assert str(sim.peek_bit("y")) == str(want)


def ram_roundtrip(circuit, words, width, ops, seed=0):
    sim = circuit.simulator()
    rng = random.Random(seed)
    model = {}
    for _ in range(ops):
        addr = rng.randrange(words)
        if model and rng.random() < 0.5:
            addr = rng.choice(list(model))
            sim.poke("we", 0)
            sim.poke("addr", addr)
            sim.step()
            assert sim.peek_int("q") == model[addr]
        else:
            value = rng.randrange(1 << width)
            sim.poke("we", 1)
            sim.poke("addr", addr)
            sim.poke("data", value)
            sim.step()
            model[addr] = value
            sim.poke("we", 0)
    return len(model)


@pytest.mark.parametrize("words,abits", [(8, 3), (16, 4), (64, 6)])
def test_ram_random_roundtrip(words, abits):
    circuit = compile_cached(programs.memory(words, 8, abits))
    assert ram_roundtrip(circuit, words, 8, 30) > 0


def test_paper_sized_ram_elaborates():
    """Section 5's example: ARRAY[0..1023] OF ARRAY[1..16] OF REG."""
    circuit = compile_cached(programs.memory(1024, 16, 10))
    assert circuit.stats()["registers"] == 1024 * 16
    sim = circuit.simulator()
    sim.poke("we", 1); sim.poke("addr", 777); sim.poke("data", 0xBEEF)
    sim.step()
    sim.poke("we", 0); sim.step()
    assert sim.peek_int("q") == 0xBEEF


@pytest.mark.parametrize("words,abits", [(16, 4), (64, 6), (256, 8)])
def test_bench_ram_access(benchmark, words, abits):
    circuit = compile_cached(programs.memory(words, 8, abits))
    entries = benchmark(ram_roundtrip, circuit, words, 8, 10)
    benchmark.extra_info["words"] = words
    benchmark.extra_info["decode_gates"] = circuit.stats()["gates"]
    assert entries > 0


@pytest.mark.parametrize("words,abits", [(64, 6), (256, 8)])
def test_bench_ram_elaboration(benchmark, words, abits):
    text = programs.memory(words, 8, abits)
    circuit = benchmark(lambda: repro.compile_text(text))
    benchmark.extra_info["words"] = words
    assert circuit.stats()["registers"] == words * 8
