"""Batched bit-parallel engine benchmark: lane throughput vs levelized.

Measures steady-state lane-cycles/sec of the batched engine on a
64-lane random-stimulus sweep of the 16-bit ripple-carry adder against
the levelized scalar engine running the same 64 stimuli one lane at a
time, plus a lane-scaling curve (16/64/256/1024 lanes).  Results are
merged into the repo-root ``BENCH_simulator.json`` under a ``batched``
key (the ``zeus.bench.simulator/1`` summary that ``bench_engines.py``
writes).

Used by the CI benchmark-smoke job::

    PYTHONPATH=src python benchmarks/bench_batched.py \
        --cycles 30 --out BENCH_simulator.json --min-speedup 20

The acceptance bar is 20x: one batched pass over 64 lanes must beat 64
scalar levelized passes by at least that factor (measured ~30x here).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import time

import repro
from repro.stdlib import programs

LANE_CURVE = (16, 64, 256, 1024)


def _stimuli(rng, lanes):
    return {
        "a": [rng.randrange(1 << 16) for _ in range(lanes)],
        "b": [rng.randrange(1 << 16) for _ in range(lanes)],
        "cin": [rng.randint(0, 1) for _ in range(lanes)],
    }


def measure_batched(circuit, stim, lanes, cycles):
    """Steady-state lane-cycles/sec: the simulator is warmed with one
    step before timing (schedule and plane buffers already built)."""
    sim = circuit.simulator(engine="batched", lanes=lanes)
    if not sim._batched_fast:
        raise RuntimeError("adders must take the bit-parallel path")
    for name, values in stim.items():
        sim.poke_lanes(name, values)
    sim.step()
    t0 = time.perf_counter()
    sim.step(cycles)
    elapsed = time.perf_counter() - t0
    return (lanes * cycles) / elapsed, sim


def measure_levelized(circuit, stim, lanes, cycles):
    """The same lane stimuli run one at a time on the levelized scalar
    engine (one warmed simulator, re-poked per lane)."""
    sim = circuit.simulator(engine="levelized")
    sim.step()
    t0 = time.perf_counter()
    for k in range(lanes):
        for name, values in stim.items():
            sim.poke(name, values[k])
        sim.step(cycles)
    elapsed = time.perf_counter() - t0
    return (lanes * cycles) / elapsed


def run_benchmark(cycles, seed=0):
    circuit = repro.compile_text(programs.ripple_carry(16), top="adder")
    rng = random.Random(seed)
    results = {"workload": "adders-sweep", "cycles": cycles}

    stim = _stimuli(rng, 64)
    batched_rate, sim = measure_batched(circuit, stim, 64, cycles)
    scalar_rate = measure_levelized(circuit, stim, 64, cycles)
    # sanity: lane 0 of the batched run equals the last scalar state only
    # by accident; instead spot-check the adder result itself
    a, b, cin = stim["a"][0], stim["b"][0], stim["cin"][0]
    s = sim.peek_lane_int("s", 0)
    cout = sim.peek_lane_int("cout", 0)
    if ((cout << 16) | s) != a + b + cin:
        raise RuntimeError("batched adder result is wrong; not benchmarking a broken engine")
    results["lane_cycles_per_s"] = {
        "batched_64": batched_rate,
        "levelized": scalar_rate,
    }
    results["speedup"] = batched_rate / scalar_rate

    curve = {}
    for lanes in LANE_CURVE:
        rate, _ = measure_batched(
            circuit, _stimuli(rng, lanes), lanes, cycles
        )
        curve[str(lanes)] = rate
    results["lane_curve"] = curve
    return results


def merge_into_summary(out_path, results, key="batched"):
    """Add one top-level section (``batched`` by default; *key* for
    other benchmark drivers, e.g. ``flight``) to an existing
    bench_engines summary (or start a fresh one when the file does not
    exist)."""
    if os.path.exists(out_path):
        with open(out_path, encoding="utf-8") as f:
            summary = json.load(f)
    else:
        summary = {"schema": "zeus.bench.simulator/1", "workloads": {}}
    summary[key] = results
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    return summary


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=30,
                    help="cycles per measurement (default 30)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail unless the 64-lane speedup clears this bar")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    results = run_benchmark(args.cycles, seed=args.seed)
    rates = results["lane_cycles_per_s"]
    print(f"adders sweep  batched(64) {rates['batched_64']:>12,.0f} lane-c/s   "
          f"levelized {rates['levelized']:>10,.0f} lane-c/s   "
          f"speedup {results['speedup']:.1f}x")
    for lanes, rate in results["lane_curve"].items():
        print(f"  {int(lanes):>5} lanes: {rate:>12,.0f} lane-cycles/s")
    merge_into_summary(args.out, results)
    print(f"wrote {args.out}")

    if args.min_speedup is not None and results["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {results['speedup']:.2f}x "
              f"< required {args.min_speedup}x")
        return 1
    return 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_batched_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(cycles=3)
    assert results["speedup"] > 1
    assert set(results["lane_curve"]) == {str(n) for n in LANE_CURVE}
    summary = merge_into_summary(str(out), results)
    assert summary["schema"] == "zeus.bench.simulator/1"
    assert summary["batched"]["workload"] == "adders-sweep"
    # merging preserves an existing engines summary
    merged = merge_into_summary(str(out), results)
    assert merged["batched"] == results


if __name__ == "__main__":
    raise SystemExit(main())
