"""E2 -- the Blackjack finite state machine (paper section 10).

Reproduces the FSM behaviour over dealt games and measures cycles/sec of
the synchronous machine.
"""

import random

import pytest

from repro.stdlib import programs

from zeus_bench_utils import compile_cached


def play(sim, cards, max_cycles=300):
    sim.reset_state()
    sim.poke("RSET", 1); sim.poke("ycard", 0); sim.poke("value", 0)
    sim.step()
    sim.poke("RSET", 0)
    cards = list(cards)
    for _ in range(max_cycles):
        sim.poke("ycard", 0)
        sim.evaluate()
        if str(sim.peek_bit("stand")) == "1":
            return "stand", sim.peek_int("bj.score.out")
        if str(sim.peek_bit("broke")) == "1":
            return "broke", sim.peek_int("bj.score.out")
        if str(sim.peek_bit("hit")) == "1" and cards:
            sim.poke("ycard", 1)
            sim.poke("value", cards.pop(0))
        sim.step()
    return "timeout", None


def model(cards):
    cards = list(cards)
    score, ace = 0, False
    while cards:
        card = cards.pop(0)
        score += card
        if card == 1 and not ace:
            score += 10
            ace = True
        while True:
            if score < 17:
                break
            if score < 22:
                return "stand", score
            if ace:
                score -= 10
                ace = False
                continue
            return "broke", score
    return "timeout", None


def play_deck(sim, seed, games):
    rng = random.Random(seed)
    outcomes = {"stand": 0, "broke": 0}
    for _ in range(games):
        cards = [min(rng.randint(1, 13), 10) for _ in range(12)]
        outcome, score = play(sim, cards)
        assert (outcome, score) == model(cards)
        outcomes[outcome] += 1
    return outcomes


def test_outcomes_match_model_extensively():
    circuit = compile_cached(programs.BLACKJACK)
    sim = circuit.simulator()
    outcomes = play_deck(sim, seed=3, games=40)
    assert outcomes["stand"] + outcomes["broke"] == 40
    assert outcomes["stand"] > 0 and outcomes["broke"] > 0


@pytest.mark.parametrize("engine", ["levelized", "dataflow"])
def test_bench_games_per_second(benchmark, engine):
    circuit = compile_cached(programs.BLACKJACK)
    sim = circuit.simulator(engine=engine)
    assert sim.engine == engine
    outcomes = benchmark(play_deck, sim, 11, 5)
    benchmark.extra_info["netlist"] = circuit.stats()
    benchmark.extra_info["engine"] = engine
    assert sum(outcomes.values()) == 5


@pytest.mark.parametrize("engine", ["levelized", "dataflow"])
def test_bench_raw_cycles(benchmark, engine):
    circuit = compile_cached(programs.BLACKJACK)
    sim = circuit.simulator(engine=engine)
    assert sim.engine == engine
    sim.poke("RSET", 1); sim.poke("ycard", 0); sim.poke("value", 0)
    sim.step()
    sim.poke("RSET", 0)

    def run():
        sim.step(50)
        return sim.cycle

    benchmark(run)
    benchmark.extra_info["engine"] = engine
