"""Flight-recorder overhead benchmark: recording cost on blackjack.

Measures blackjack cycles/sec on all three engines in three recorder
configurations:

* **off**    -- no recorder (``flight=None``); the hot loop pays one
  ``is not None`` test and one ``len()`` per cycle;
* **paused** -- a recorder is bound but ``enabled=False``; a strict
  superset of the *off* path (adds the ``record()`` call and its early
  return), so ``off/paused`` is a conservative upper bound on the
  disabled-path overhead;
* **on**     -- a 64-cycle ring actively recording every cycle.

Results are merged into the repo-root ``BENCH_simulator.json`` under a
``flight`` key.  Used by hand to refresh the committed numbers and by
CI with the acceptance bars::

    PYTHONPATH=src python benchmarks/bench_flight.py \
        --cycles 2000 --out BENCH_simulator.json \
        --max-overhead 2.0 --max-disabled-overhead 1.05

(the PR-6 acceptance: enabled recording costs at most 2x, the disabled
path at most 5%, on blackjack).
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.obs.flight import FlightRecorder
from repro.stdlib import programs

from bench_batched import merge_into_summary

ENGINES = ("levelized", "dataflow", "batched")
MODES = ("off", "paused", "on")
CAPACITY = 64

#: steady-state blackjack drive (mirrors bench_engines.WORKLOADS).
POKES = {"RSET": 0, "ycard": 0, "value": 0}


def measure(circuit, engine, mode, cycles, seed=0):
    """Blackjack cycles/sec for one (engine, recorder-mode) pair."""
    kwargs = {"seed": seed, "engine": engine}
    if engine == "batched":
        kwargs["lanes"] = 64
    if mode != "off":
        recorder = FlightRecorder(CAPACITY)
        recorder.enabled = mode == "on"
        kwargs["flight"] = recorder
    sim = circuit.simulator(**kwargs)
    sim.poke("RSET", 1)
    sim.step()
    for sig, val in POKES.items():
        sim.poke(sig, val)
    sim.step()  # warm (schedule built, caches hot)
    t0 = time.perf_counter()
    sim.step(cycles)
    elapsed = time.perf_counter() - t0
    if mode == "on" and len(sim.flight) != min(cycles + 2, CAPACITY):
        raise RuntimeError("recorder did not record; not benchmarking it")
    return cycles / elapsed


def run_benchmark(cycles, seed=0):
    circuit = repro.compile_text(programs.BLACKJACK)
    results = {"workload": "blackjack", "cycles": cycles,
               "capacity": CAPACITY}
    for engine in ENGINES:
        rates = {
            mode: measure(circuit, engine, mode, cycles, seed=seed)
            for mode in MODES
        }
        results[engine] = {
            "cycles_per_s": rates,
            "overhead": {
                # conservative bound on the disabled-path cost
                "paused_vs_off": rates["off"] / rates["paused"],
                # full recording cost
                "on_vs_off": rates["off"] / rates["on"],
            },
        }
    return results


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--cycles", type=int, default=2000,
                    help="cycles per measurement (default 2000)")
    ap.add_argument("--out", default="BENCH_simulator.json",
                    help="summary JSON to merge into")
    ap.add_argument("--max-overhead", type=float, default=None,
                    help="fail unless enabled overhead (on_vs_off) stays "
                         "under this factor on every engine")
    ap.add_argument("--max-disabled-overhead", type=float, default=None,
                    help="fail unless the paused_vs_off bound stays "
                         "under this factor on every engine")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    results = run_benchmark(args.cycles, seed=args.seed)
    failed = []
    for engine in ENGINES:
        r = results[engine]
        rates, over = r["cycles_per_s"], r["overhead"]
        print(f"{engine:10s} off {rates['off']:>10,.0f} c/s   "
              f"paused {rates['paused']:>10,.0f} c/s   "
              f"on {rates['on']:>10,.0f} c/s   "
              f"overhead {over['on_vs_off']:.2f}x "
              f"(paused {over['paused_vs_off']:.2f}x)")
        if args.max_overhead is not None and \
                over["on_vs_off"] > args.max_overhead:
            failed.append(f"{engine}: enabled overhead "
                          f"{over['on_vs_off']:.2f}x > {args.max_overhead}x")
        if args.max_disabled_overhead is not None and \
                over["paused_vs_off"] > args.max_disabled_overhead:
            failed.append(f"{engine}: disabled-path bound "
                          f"{over['paused_vs_off']:.2f}x > "
                          f"{args.max_disabled_overhead}x")
    summary = merge_into_summary(args.out, results, key="flight")
    assert summary["flight"] == results
    print(f"wrote {args.out}")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


# -- tier-1 smoke (bench_*.py files are collected by pytest) ---------------

def test_bench_flight_summary_shape(tmp_path):
    out = tmp_path / "BENCH_simulator.json"
    results = run_benchmark(cycles=15)
    for engine in ENGINES:
        rates = results[engine]["cycles_per_s"]
        assert all(rates[m] > 0 for m in MODES)
        assert results[engine]["overhead"]["on_vs_off"] > 0
    summary = merge_into_summary(str(out), results, key="flight")
    assert summary["flight"]["workload"] == "blackjack"


if __name__ == "__main__":
    raise SystemExit(main())
